//! Ergonomic entry points: a fluent builder and an iterator adapter.

use sssj_index::IndexKind;
use sssj_types::{SimilarPair, StreamRecord};

use crate::algorithm::{build_algorithm, Framework, StreamJoin};
use crate::config::SssjConfig;
use crate::reorder::ReorderBuffer;

/// Fluent configuration of a streaming join.
///
/// ```
/// use sssj_core::JoinBuilder;
///
/// let join = JoinBuilder::new(0.7, 0.01).minibatch().build();
/// assert_eq!(join.name(), "MB-L2");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct JoinBuilder {
    config: SssjConfig,
    framework: Framework,
    kind: IndexKind,
    slack: f64,
}

impl JoinBuilder {
    /// Starts from the problem parameters; defaults to the paper's
    /// recommended STR-L2.
    pub fn new(theta: f64, lambda: f64) -> Self {
        JoinBuilder {
            config: SssjConfig::new(theta, lambda),
            framework: Framework::Streaming,
            kind: IndexKind::L2,
            slack: 0.0,
        }
    }

    /// Derives λ from the §3 recipe: the largest gap at which identical
    /// items still matter.
    pub fn from_horizon(theta: f64, tau: f64) -> Self {
        JoinBuilder {
            config: SssjConfig::from_horizon(theta, tau),
            framework: Framework::Streaming,
            kind: IndexKind::L2,
            slack: 0.0,
        }
    }

    /// Selects the MiniBatch framework.
    pub fn minibatch(mut self) -> Self {
        self.framework = Framework::MiniBatch;
        self
    }

    /// Selects the Streaming framework (the default).
    pub fn streaming(mut self) -> Self {
        self.framework = Framework::Streaming;
        self
    }

    /// Selects the index variant (default [`IndexKind::L2`]).
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.kind = kind;
        self
    }

    /// Tolerates records arriving up to `slack` time units out of order
    /// by wrapping the join in a [`ReorderBuffer`]; hopelessly late
    /// records are counted and dropped. Zero (the default) requires
    /// sorted input.
    pub fn reorder_slack(mut self, slack: f64) -> Self {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "slack must be finite and non-negative: {slack}"
        );
        self.slack = slack;
        self
    }

    /// The resolved configuration.
    pub fn config(&self) -> SssjConfig {
        self.config
    }

    /// Builds the join.
    pub fn build(self) -> Box<dyn StreamJoin> {
        let join = build_algorithm(self.framework, self.kind, self.config);
        if self.slack > 0.0 {
            Box::new(ReorderBuffer::new(join, self.slack))
        } else {
            join
        }
    }

    /// Builds the join and wraps a record source into a pair iterator.
    pub fn pairs<I>(self, records: I) -> PairIter<I::IntoIter>
    where
        I: IntoIterator<Item = StreamRecord>,
    {
        PairIter::new(self.build(), records.into_iter())
    }
}

/// An iterator adapter: pulls records from a source, pushes out similar
/// pairs as they complete, and flushes buffered output (MiniBatch) when
/// the source ends.
pub struct PairIter<I> {
    join: Box<dyn StreamJoin>,
    source: I,
    pending: std::collections::VecDeque<SimilarPair>,
    scratch: Vec<SimilarPair>,
    finished: bool,
}

impl<I: Iterator<Item = StreamRecord>> PairIter<I> {
    /// Wraps a join and a record source.
    pub fn new(join: Box<dyn StreamJoin>, source: I) -> Self {
        PairIter {
            join,
            source,
            pending: std::collections::VecDeque::new(),
            scratch: Vec::new(),
            finished: false,
        }
    }

    /// Access to the underlying join (e.g. for stats after exhaustion).
    pub fn join(&self) -> &dyn StreamJoin {
        self.join.as_ref()
    }
}

impl<I: Iterator<Item = StreamRecord>> Iterator for PairIter<I> {
    type Item = SimilarPair;

    fn next(&mut self) -> Option<SimilarPair> {
        loop {
            if let Some(pair) = self.pending.pop_front() {
                return Some(pair);
            }
            if self.finished {
                return None;
            }
            match self.source.next() {
                Some(record) => {
                    self.scratch.clear();
                    self.join.process(&record, &mut self.scratch);
                    self.pending.extend(self.scratch.drain(..));
                }
                None => {
                    self.finished = true;
                    self.scratch.clear();
                    self.join.finish(&mut self.scratch);
                    self.pending.extend(self.scratch.drain(..));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn stream() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(1, 1.0)])),
            StreamRecord::new(1, Timestamp::new(1.0), unit_vector(&[(1, 1.0)])),
            StreamRecord::new(2, Timestamp::new(2.0), unit_vector(&[(9, 1.0)])),
            StreamRecord::new(3, Timestamp::new(3.0), unit_vector(&[(1, 1.0)])),
        ]
    }

    #[test]
    fn builder_selects_combination() {
        assert_eq!(JoinBuilder::new(0.5, 0.1).build().name(), "STR-L2");
        assert_eq!(
            JoinBuilder::new(0.5, 0.1)
                .minibatch()
                .index(IndexKind::Inv)
                .build()
                .name(),
            "MB-INV"
        );
        assert_eq!(
            JoinBuilder::new(0.5, 0.1)
                .minibatch()
                .streaming()
                .build()
                .name(),
            "STR-L2"
        );
    }

    #[test]
    fn builder_reorder_slack_fixes_disorder() {
        let mut shuffled = stream();
        shuffled.swap(0, 1); // timestamps 1.0, 0.0, 2.0, 3.0
        let strict: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let buffered: Vec<_> = JoinBuilder::new(0.5, 0.2)
            .reorder_slack(5.0)
            .pairs(shuffled)
            .collect();
        let mut a: Vec<_> = strict.iter().map(|p| p.key()).collect();
        let mut b: Vec<_> = buffered.iter().map(|p| p.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(
            JoinBuilder::new(0.5, 0.2).reorder_slack(5.0).build().name(),
            "Reorder(STR-L2)"
        );
    }

    #[test]
    fn from_horizon_sets_lambda() {
        let b = JoinBuilder::from_horizon(0.5, 100.0);
        assert!((b.config().tau() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pair_iter_yields_streaming_pairs() {
        let pairs: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        // (0,3) survives too: e^{-0.2·3} ≈ 0.55 ≥ 0.5.
        assert_eq!(keys, vec![(0, 1), (1, 3), (0, 3)]);
    }

    #[test]
    fn pair_iter_flushes_minibatch_at_end() {
        // MB reports within-window pairs only at flush; the iterator must
        // still surface them.
        let str_pairs: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let mb_pairs: Vec<_> = JoinBuilder::new(0.5, 0.2)
            .minibatch()
            .pairs(stream())
            .collect();
        let mut a: Vec<_> = str_pairs.iter().map(|p| p.key()).collect();
        let mut b: Vec<_> = mb_pairs.iter().map(|p| p.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn pair_iter_is_fused_after_end() {
        let mut it = JoinBuilder::new(0.5, 0.2).pairs(stream());
        while it.next().is_some() {}
        assert!(it.next().is_none());
        assert!(it.join().stats().pairs_output > 0);
    }
}

//! Ergonomic entry points: a fluent builder over [`JoinSpec`] and an
//! iterator adapter.
//!
//! [`JoinBuilder`] is a thin fluent front-end over the declarative
//! [`JoinSpec`]: every method mutates the spec, [`JoinBuilder::build`]
//! delegates to the one factory [`JoinSpec::build`], and
//! [`JoinBuilder::spec`] hands the spec out for serialization (its
//! compact text form drives the CLI and the net protocol). One worked
//! example per variant:
//!
//! ```
//! use sssj_core::JoinBuilder;
//! use sssj_index::IndexKind;
//! use sssj_types::DecayModel;
//!
//! // The paper's eight framework × index combinations:
//! let join = JoinBuilder::new(0.7, 0.01).minibatch().index(IndexKind::Inv).build();
//! assert_eq!(join.name(), "MB-INV");
//!
//! // Generalised decay models (hard window, linear, polynomial):
//! let join = JoinBuilder::new(0.7, 0.0).decay_model(DecayModel::sliding_window(10.0)).build();
//! assert_eq!(join.name(), "STR-L2[window:10]");
//!
//! // Per-arrival top-k selection:
//! let join = JoinBuilder::new(0.5, 0.01).top_k(3).build();
//! assert_eq!(join.name(), "STR-L2-top3");
//!
//! // Out-of-order tolerance and online self-verification wrap any base:
//! let join = JoinBuilder::new(0.7, 0.01).checked().reorder_slack(5.0).build();
//! assert_eq!(join.name(), "Reorder(checked(STR-L2))");
//!
//! // Checkpointable STR (see sssj_core::snapshot):
//! let spec = JoinBuilder::new(0.7, 0.01).snapshot().spec().clone();
//! assert_eq!(spec.to_string(), "str-l2?theta=0.7&lambda=0.01&snapshot");
//!
//! // Candidate-aware sharded execution around any shardable inner
//! // engine (built by sssj-parallel once registered; `inner=str-l2` is
//! // the default — `sharded?shards=4&inner=mb-l2ap` runs MB workers):
//! use sssj_core::ShardedInner;
//! let spec = JoinBuilder::new(0.7, 0.01)
//!     .index(IndexKind::L2ap)
//!     .sharded_inner(4, ShardedInner::MiniBatch)
//!     .spec()
//!     .clone();
//! assert_eq!(
//!     spec.to_string(),
//!     "sharded?theta=0.7&lambda=0.01&shards=4&inner=mb-l2ap"
//! );
//! ```
//!
//! The LSH and sharded engines are spec-addressable too
//! ([`JoinBuilder::lsh`], [`JoinBuilder::sharded`]); building those
//! requires the providing crate (`sssj-lsh` / `sssj-parallel`) to be
//! linked and registered — every workspace binary does this at startup.
//!
//! # Durability
//!
//! [`JoinBuilder::durable`] (spec key `durable=<dir>`) wraps the engine
//! in the `sssj-store` subsystem: every ingested record is appended to
//! a segmented, CRC-framed **write-ahead log** under `<dir>` before the
//! engine sees it, and a **checkpoint manager** periodically persists
//! the engine's [`crate::Checkpointable`] aux state plus the
//! recently-emitted-pair set, publishing each checkpoint by atomically
//! renaming `MANIFEST`. Log segments fall to horizon-aware GC once a
//! checkpoint covers them — a record older than `now − τ` can never
//! pair again, so disk usage tracks the live window, not the stream.
//!
//! Building the same spec against a directory that already holds a
//! manifest **resumes** it: the last checkpoint is loaded, the WAL tail
//! (self-truncated at any torn frame a `kill -9` left) is replayed with
//! output suppressed up to the checkpointed state, and
//! [`StreamJoin::resume_point`] reports how many records the store
//! already ingested so the caller can continue ids and the timestamp
//! watermark seamlessly. The contract — verified by crash-injection
//! tests for every engine × index variant — is that *pre-crash output ∪
//! post-recovery output* is set-equal to the uninterrupted run, with no
//! pair delivered before the last checkpoint ever emitted twice.
//!
//! Worked example (serve → kill → recover): see the crate-root docs of
//! the `sssj` facade, whose doctest runs it end to end; operationally
//! the same flow is `sssj serve --durable <dir>` (or
//! `sssj run --spec '…durable=<dir>'`), `kill -9`, `sssj recover <dir>`.
//! Supported engines: `str`, `mb`, `decay`, and `sharded` over those —
//! the sharded driver checkpoints per shard at a batch boundary so the
//! cut is consistent.
//!
//! # Querying the live graph
//!
//! [`JoinBuilder::graph`] (spec key `graph`) turns the join's pair
//! stream into **queryable live state** (the `sssj-graph` subsystem):
//! every delivered pair becomes an edge stamped with its delivery time
//! and expiring at the pipeline's horizon ([`JoinSpec::horizon`]), and
//! the graph serves *neighbours of X right now*, *X's top-k matches*
//! (ranked by similarity), *X's connected component* (epoch-rebuilt
//! union-find — unions are incremental, expiry triggers a lazy
//! rebuild), and aggregate stats. The plumbing is the [`crate::PairSink`]
//! trait: the wrapper hands each pair to the sink straight from the
//! output buffer, no intermediate queue; for the sharded engine the
//! sink hangs off the driver, which already funnels every worker's
//! batched pair returns.
//!
//! ```text
//! str-l2?theta=0.7&tau=10&graph                      tap any engine
//! sharded?theta=0.6&tau=10&shards=4&inner=mb-l2ap&graph
//! str-l2?theta=0.7&tau=10&durable=/var/sssj&graph    edges ride checkpoints
//! ```
//!
//! Construction goes through the one spec factory once
//! `sssj_graph::register_spec_builder()` has run (every workspace
//! binary registers at startup); `sssj_graph::build_with_handle` is the
//! same path but also hands back the query handle, which is what the
//! net session serves `QUERY neighbors|topk|component|stats` and
//! `SUBSCRIBE <node>` from (grammar in `sssj_net::protocol`) and what
//! `sssj graph <file> --query '…'` prints. With `durable=`, the graph
//! sits directly above the durable wrapper and its live edge set rides
//! the checkpoint aux blob, so recovery restores edges whose member
//! records are already behind the WAL horizon. A runnable serve → query
//! doctest lives at the `sssj` facade crate root.
//!
//! Reads scale independently of ingest: the handle maintains a
//! write-side graph plus an immutable **published snapshot** swapped in
//! at a bounded cadence, so concurrent readers answer wait-free from
//! the snapshot (staleness bounded by its watermark, which `QUERY
//! stats` reports) while ingest never blocks on them. A shared
//! `sssj net-serve --shared` pipeline serves every connection's queries
//! from that snapshot and pushes subscribed edge updates out-of-band as
//! snapshots publish; `SSSJ_GRAPH_ORACLE=1` forces the original
//! mutex-serialized path, kept as the differential oracle. Details in
//! `sssj_graph`'s module docs (snapshot cadence, read-your-writes) and
//! `sssj_net`'s event-loop docs (push framing, drop policy).
//!
//! # Historical queries & backfill
//!
//! [`JoinBuilder::history`] (spec key `history=<dir>`, requires
//! `durable=`) redirects horizon GC from deletion into an **archive**:
//! retired WAL segments and expired graph edges are compacted into
//! immutable, CRC-framed, sorted segment files under `<dir>` (the
//! `sssj-segments` subsystem), published under the same atomic-rename
//! `MANIFEST` discipline as checkpoints — a crash mid-compaction leaves
//! either the WAL segment or the published archive pair, never neither.
//! Graph queries then gain a **time-travel** form: append `at=<t>` to
//! `neighbors`/`topk`/`component` over the net protocol (grammar in
//! `sssj_net::protocol`), in `sssj graph --query '… at=<t>'`, or call
//! the `*_at` methods on `sssj_segments::HistoryHandle` — each answered
//! from an overlay of the live window and the overlapping segments. And
//! `sssj backfill <dir>` (library: `sssj_segments::backfill`) re-joins
//! an archived time range under *new* parameters — a lower θ, a
//! different λ — without touching the live store.
//!
//! ```
//! use sssj_core::{JoinBuilder, JoinSpec};
//!
//! let spec = JoinBuilder::new(0.7, 0.1)
//!     .durable("/var/sssj/wal")
//!     .graph()
//!     .history("/var/sssj/hist")
//!     .spec()
//!     .clone();
//! assert_eq!(
//!     spec.to_string(),
//!     "str-l2?theta=0.7&lambda=0.1&durable=/var/sssj/wal&graph&history=/var/sssj/hist"
//! );
//! assert!(spec.validate().is_ok());
//! let reparsed: JoinSpec = spec.to_string().parse().unwrap();
//! assert_eq!(reparsed, spec);
//!
//! // history= compacts the durable store's GC stream, so it cannot
//! // exist without the durable base — the grammar rejects the orphan.
//! let err = "str-l2?theta=0.7&lambda=0.1&history=/tmp/h"
//!     .parse::<JoinSpec>()
//!     .unwrap_err();
//! assert!(err.to_string().contains("durable"), "{err}");
//! ```
//!
//! Building a history-wrapped spec goes through the one factory once
//! `sssj_segments::register_spec_builder()` has run;
//! `sssj_segments::build_with_handles` additionally hands back the
//! graph and history handles the queries are served from. A runnable
//! serve → expire → time-travel doctest lives at the `sssj` facade
//! crate root.
//!
//! # Observability
//!
//! Every pipeline built through [`JoinSpec::build`] is instrumented by
//! default: the factory wraps the finished engine in a transparent
//! telemetry tap ([`crate::telemetry::TelemetryJoin`]) that bumps the
//! process-global registry (`sssj_metrics::registry`) — records and
//! pairs on the hot path, candidate/skip shape counters (labeled by
//! engine) flushed from the engines' own statistics on the cold paths.
//! The other runtime subsystems register their own series the same way:
//! the sharded router, the durable store's WAL and checkpoints, the
//! history tier's compactor, the graph's snapshot publisher, and the
//! net server's per-verb request counters and latency summaries.
//!
//! Recording is a relaxed atomic op on a `&'static` handle — no locks,
//! no allocation, safe inside the zero-alloc steady state — and
//! `SSSJ_TELEMETRY=off` (read once at startup) collapses every mutator
//! to a single relaxed load + branch. Telemetry only ever *observes*:
//! the CI telemetry-off lane proves the whole suite byte-identical with
//! the registry dark.
//!
//! Naming follows `sssj_<crate>_<noun>[_<unit>][_total]` — monotone
//! counters end `_total`, durations are seconds (`_seconds`), sizes are
//! bytes (`_bytes`). Labels are for low-cardinality dimensions only (a
//! verb, an engine name, a shard ordinal): every distinct label set is
//! a leaked allocation held for the process lifetime, so keep the cross
//! product small — never a record id, node id or timestamp. To add a
//! metric, resolve the handle once at construction time
//! (`Registry::global().counter("sssj_mycrate_widgets_total", …)`),
//! store the `&'static` in your struct, and bump it from the hot path;
//! see `sssj_metrics::registry`'s module docs for the full contract.
//!
//! Export is pull: the net protocol's `METRICS` verb serves the
//! Prometheus text exposition — recorder series as full cumulative
//! histograms (`_bucket{le=…}`/`_sum`/`_count`) — scrape it with `sssj
//! metrics <addr>` (grammar in `sssj_net::protocol`), and `sssj serve
//! --metrics-log FILE` appends one JSON snapshot line per second for
//! offline correlation (`--metrics-log-max-bytes N` bounds the file
//! with one-deep rotation). Two always-on probes ride along: a
//! slow-query log (`SSSJ_SLOW_MS=<n>` logs any request over the
//! threshold, rate limited) and the event-loop stall detector
//! (`sssj_net_loop_stalls_total`, also the `G loop_stalls=` line on
//! every event-loop `STATS` reply).
//!
//! Beside the counter registry sits the **flight recorder**
//! (`sssj_metrics::trace`): an always-on span/event tracing layer built
//! on per-thread, lock-free, fixed-width seqlock rings. Recording a
//! span is a clock read plus a handful of relaxed stores — never an
//! allocation, never a lock — and `SSSJ_TRACE=off` (read once)
//! collapses every probe to one relaxed load + branch, proven
//! byte-invisible by its own CI lane exactly like the registry's. The
//! stages that bump counters also record spans: record ingest,
//! candidate generation, router flush and per-shard delivery, WAL
//! append and fsync, checkpoints, graph snapshot publishes, segment
//! compactions, and net request handling — each stamped with a
//! per-request trace id that rides the router's batches across thread
//! boundaries, so one record's journey through the whole pipeline is
//! reconstructible from a single dump.
//!
//! Dump it three ways: the net `TRACE [n]` verb (newest `n` events,
//! watermark-clocked, wire grammar in `sssj_net::protocol`); `sssj
//! trace <addr> [--out FILE]`, which renders the dump as Chrome
//! trace-event JSON loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`; and `sssj serve --trace-log FILE` for continuous
//! wire-format capture (rendered later with `sssj trace --from-log`).
//! The probes feed it too: a request over `SSSJ_SLOW_MS` logs its whole
//! span tree, and an event-loop stall or a server panic dumps the
//! recorder to stderr — the last events before trouble are usually the
//! diagnosis. A runnable serve → trace doctest lives at the `sssj`
//! facade crate root.

use sssj_index::IndexKind;
use sssj_types::{DecayModel, SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;
use crate::config::SssjConfig;
use crate::spec::{DecaySpec, EngineSpec, JoinSpec, LshSpec, ShardedInner, SpecError, WrapperSpec};

/// Fluent configuration of a streaming join — sugar over [`JoinSpec`].
///
/// ```
/// use sssj_core::JoinBuilder;
///
/// let join = JoinBuilder::new(0.7, 0.01).minibatch().build();
/// assert_eq!(join.name(), "MB-L2");
/// ```
#[derive(Clone, Debug)]
pub struct JoinBuilder {
    spec: JoinSpec,
}

impl JoinBuilder {
    /// Starts from the problem parameters; defaults to the paper's
    /// recommended STR-L2.
    pub fn new(theta: f64, lambda: f64) -> Self {
        JoinBuilder {
            spec: JoinSpec::new(theta, lambda),
        }
    }

    /// Derives λ from the §3 recipe: the largest gap at which identical
    /// items still matter.
    pub fn from_horizon(theta: f64, tau: f64) -> Self {
        JoinBuilder {
            spec: JoinSpec::from_horizon(theta, tau),
        }
    }

    /// Starts from an explicit spec (e.g. one parsed from its text form).
    pub fn from_spec(spec: JoinSpec) -> Self {
        JoinBuilder { spec }
    }

    /// Selects the MiniBatch framework.
    pub fn minibatch(mut self) -> Self {
        self.spec.engine = EngineSpec::MiniBatch;
        self
    }

    /// Selects the Streaming framework (the default).
    pub fn streaming(mut self) -> Self {
        self.spec.engine = EngineSpec::Streaming;
        self
    }

    /// Selects the index variant (default [`IndexKind::L2`]).
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.spec.index = kind;
        self
    }

    /// Generalises the decay to an arbitrary [`DecayModel`] (the engine
    /// becomes the L2-only generic-decay join; λ is carried by the
    /// model).
    pub fn decay_model(mut self, model: DecayModel) -> Self {
        self.spec.engine = EngineSpec::GenericDecay(DecaySpec::new(model));
        self.spec.lambda = 0.0;
        self
    }

    /// Enables or ablates the decay engine's window-max candidate bound
    /// (the `bounds=wmax|l2` spec key). Only meaningful after
    /// [`JoinBuilder::decay_model`]; panics otherwise.
    pub fn decay_bounds(mut self, window_max: bool) -> Self {
        match &mut self.spec.engine {
            EngineSpec::GenericDecay(d) => d.window_max = window_max,
            engine => panic!(
                "decay_bounds applies to the decay engine, not {:?}",
                engine.keyword()
            ),
        }
        self
    }

    /// Caps output at the `k` best matches per arrival.
    pub fn top_k(mut self, k: u32) -> Self {
        self.spec.engine = EngineSpec::TopK(k);
        self
    }

    /// Selects the approximate SimHash/banding engine (requires the
    /// `sssj-lsh` crate to be registered in this binary).
    pub fn lsh(mut self, params: LshSpec) -> Self {
        self.spec.engine = EngineSpec::Lsh(params);
        self
    }

    /// Runs the join across `shards` worker threads of STR workers
    /// (requires the `sssj-parallel` crate to be registered in this
    /// binary).
    pub fn sharded(self, shards: u32) -> Self {
        self.sharded_inner(shards, ShardedInner::Streaming)
    }

    /// Runs the join across `shards` worker threads of the given inner
    /// engine — `sharded?shards=N&inner=…` as a builder call. Queries are
    /// routed candidate-aware for dimension-indexed inners (str/mb/decay)
    /// and broadcast for lsh.
    pub fn sharded_inner(mut self, shards: u32, inner: ShardedInner) -> Self {
        self.spec.engine = EngineSpec::Sharded { shards, inner };
        self
    }

    /// Tolerates records arriving up to `slack` time units out of order
    /// by wrapping the join in a [`crate::ReorderBuffer`]; hopelessly
    /// late records are counted and dropped. Zero (the default) requires
    /// sorted input. The last call wins — a later `0` removes the
    /// wrapper again, matching the pre-spec field semantics.
    pub fn reorder_slack(mut self, slack: f64) -> Self {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "slack must be finite and non-negative: {slack}"
        );
        self.spec
            .wrappers
            .retain(|w| !matches!(w, WrapperSpec::Reorder(_)));
        if slack > 0.0 {
            self.spec.wrappers.push(WrapperSpec::Reorder(slack));
        }
        self
    }

    /// Shadows the join with the exact oracle ([`crate::CheckedJoin`]) —
    /// a debugging aid, O(n·w) like the oracle. Idempotent.
    pub fn checked(mut self) -> Self {
        if !self.spec.wrappers.contains(&WrapperSpec::Checked) {
            self.spec.wrappers.push(WrapperSpec::Checked);
        }
        self
    }

    /// Makes the join checkpointable ([`crate::RecoverableJoin`]; STR
    /// engine only). Idempotent.
    pub fn snapshot(mut self) -> Self {
        if !self.spec.wrappers.contains(&WrapperSpec::Snapshot) {
            self.spec.wrappers.insert(0, WrapperSpec::Snapshot);
        }
        self
    }

    /// Makes the join durable: WAL + checkpoints under `dir`
    /// (`sssj-store`; resumes when the directory already holds a
    /// manifest — see the module docs' Durability section). Replaces any
    /// previous durable directory.
    pub fn durable(mut self, dir: impl Into<String>) -> Self {
        self.spec
            .wrappers
            .retain(|w| !matches!(w, WrapperSpec::Durable(_)));
        self.spec
            .wrappers
            .insert(0, WrapperSpec::Durable(dir.into()));
        self
    }

    /// Maintains a live similarity graph over the pair stream (spec key
    /// `graph`; built by `sssj-graph` once registered — see the
    /// [module docs](self) for the query surface). Placed directly
    /// above the durable wrapper when one is present, so graph edges
    /// ride the checkpoint; idempotent.
    pub fn graph(mut self) -> Self {
        if self.spec.wrappers.contains(&WrapperSpec::Graph) {
            return self;
        }
        let at = usize::from(matches!(
            self.spec.wrappers.first(),
            Some(WrapperSpec::Durable(_) | WrapperSpec::Snapshot)
        ));
        self.spec.wrappers.insert(at, WrapperSpec::Graph);
        self
    }

    /// Archives what horizon GC would delete into an immutable segment
    /// tier under `dir` (spec key `history=<dir>`; built by
    /// `sssj-segments` once registered — see the module docs'
    /// [Historical queries & backfill](self) section). Requires a
    /// durable base; placed directly above the graph wrapper when one
    /// is present, else above the durable wrapper. Replaces any
    /// previous history directory.
    pub fn history(mut self, dir: impl Into<String>) -> Self {
        self.spec
            .wrappers
            .retain(|w| !matches!(w, WrapperSpec::History(_)));
        let at = self
            .spec
            .wrappers
            .iter()
            .position(|w| matches!(w, WrapperSpec::Graph))
            .or_else(|| {
                self.spec
                    .wrappers
                    .iter()
                    .position(|w| matches!(w, WrapperSpec::Durable(_)))
            })
            .map_or(0, |i| i + 1);
        self.spec
            .wrappers
            .insert(at, WrapperSpec::History(dir.into()));
        self
    }

    /// The resolved configuration.
    pub fn config(&self) -> SssjConfig {
        self.spec.config()
    }

    /// The underlying declarative spec.
    pub fn spec(&self) -> &JoinSpec {
        &self.spec
    }

    /// Builds the join through the single [`JoinSpec::build`] factory.
    ///
    /// Panics when the spec is invalid (mismatched engine/wrapper
    /// combination, unregistered extension engine); use
    /// [`JoinBuilder::try_build`] to handle those as values.
    pub fn build(self) -> Box<dyn StreamJoin> {
        let spec = self.spec;
        spec.build()
            .unwrap_or_else(|e| panic!("JoinBuilder: {e} (spec: {spec})"))
    }

    /// Builds the join, reporting invalid specs as [`SpecError`]s.
    pub fn try_build(self) -> Result<Box<dyn StreamJoin>, SpecError> {
        self.spec.build()
    }

    /// Builds the join and wraps a record source into a pair iterator.
    pub fn pairs<I>(self, records: I) -> PairIter<I::IntoIter>
    where
        I: IntoIterator<Item = StreamRecord>,
    {
        PairIter::new(self.build(), records.into_iter())
    }
}

/// An iterator adapter: pulls records from a source, pushes out similar
/// pairs as they complete, and flushes buffered output (MiniBatch) when
/// the source ends.
///
/// Pairs are staged in a single reusable buffer that the join appends to
/// directly; a cursor walks it and the buffer is recycled once drained,
/// so no pair is ever copied between containers.
pub struct PairIter<I> {
    join: Box<dyn StreamJoin>,
    source: I,
    /// Pairs produced but not yet yielded; `buf[cursor..]` is pending.
    buf: Vec<SimilarPair>,
    cursor: usize,
    finished: bool,
}

impl<I: Iterator<Item = StreamRecord>> PairIter<I> {
    /// Wraps a join and a record source.
    pub fn new(join: Box<dyn StreamJoin>, source: I) -> Self {
        PairIter {
            join,
            source,
            buf: Vec::new(),
            cursor: 0,
            finished: false,
        }
    }

    /// Access to the underlying join (e.g. for stats after exhaustion).
    pub fn join(&self) -> &dyn StreamJoin {
        self.join.as_ref()
    }
}

impl<I: Iterator<Item = StreamRecord>> Iterator for PairIter<I> {
    type Item = SimilarPair;

    fn next(&mut self) -> Option<SimilarPair> {
        loop {
            if let Some(pair) = self.buf.get(self.cursor) {
                self.cursor += 1;
                return Some(*pair);
            }
            if self.finished {
                return None;
            }
            // Buffer drained: recycle it and let the join append straight
            // into it.
            self.buf.clear();
            self.cursor = 0;
            match self.source.next() {
                Some(record) => self.join.process(&record, &mut self.buf),
                None => {
                    self.finished = true;
                    self.join.finish(&mut self.buf);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn stream() -> Vec<StreamRecord> {
        vec![
            StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(1, 1.0)])),
            StreamRecord::new(1, Timestamp::new(1.0), unit_vector(&[(1, 1.0)])),
            StreamRecord::new(2, Timestamp::new(2.0), unit_vector(&[(9, 1.0)])),
            StreamRecord::new(3, Timestamp::new(3.0), unit_vector(&[(1, 1.0)])),
        ]
    }

    #[test]
    fn builder_graph_places_the_wrapper() {
        let spec = JoinBuilder::new(0.7, 0.01).graph().graph().spec().clone();
        assert_eq!(spec.to_string(), "str-l2?theta=0.7&lambda=0.01&graph");
        // With durable, graph lands directly above it (position 1).
        let spec = JoinBuilder::new(0.7, 0.01)
            .graph()
            .durable("/var/sssj")
            .graph()
            .spec()
            .clone();
        assert!(spec.validate().is_ok(), "{spec}");
        assert_eq!(
            spec.to_string(),
            "str-l2?theta=0.7&lambda=0.01&durable=/var/sssj&graph"
        );
    }

    #[test]
    fn builder_history_places_the_wrapper() {
        // Above the graph when present (replacing an earlier tier)…
        let spec = JoinBuilder::new(0.7, 0.01)
            .durable("/var/sssj/wal")
            .history("/old")
            .graph()
            .history("/var/sssj/hist")
            .spec()
            .clone();
        assert!(spec.validate().is_ok(), "{spec}");
        assert_eq!(
            spec.to_string(),
            "str-l2?theta=0.7&lambda=0.01&durable=/var/sssj/wal&graph&history=/var/sssj/hist"
        );
        // …and directly above a bare durable base otherwise.
        let spec = JoinBuilder::new(0.7, 0.01)
            .durable("/var/sssj/wal")
            .history("/var/sssj/hist")
            .spec()
            .clone();
        assert!(spec.validate().is_ok(), "{spec}");
        assert_eq!(
            spec.to_string(),
            "str-l2?theta=0.7&lambda=0.01&durable=/var/sssj/wal&history=/var/sssj/hist"
        );
    }

    #[test]
    fn builder_selects_combination() {
        assert_eq!(JoinBuilder::new(0.5, 0.1).build().name(), "STR-L2");
        assert_eq!(
            JoinBuilder::new(0.5, 0.1)
                .minibatch()
                .index(IndexKind::Inv)
                .build()
                .name(),
            "MB-INV"
        );
        assert_eq!(
            JoinBuilder::new(0.5, 0.1)
                .minibatch()
                .streaming()
                .build()
                .name(),
            "STR-L2"
        );
    }

    #[test]
    fn builder_is_a_front_end_over_the_spec() {
        let b = JoinBuilder::new(0.5, 0.1)
            .minibatch()
            .index(IndexKind::Inv)
            .reorder_slack(4.0);
        assert_eq!(
            b.spec().to_string(),
            "mb-inv?theta=0.5&lambda=0.1&reorder=4"
        );
        // Round-trip through the compact form builds the same pipeline.
        let spec: JoinSpec = b.spec().to_string().parse().unwrap();
        assert_eq!(
            JoinBuilder::from_spec(spec).build().name(),
            b.build().name()
        );
    }

    #[test]
    fn builder_reaches_extended_variants() {
        assert_eq!(
            JoinBuilder::new(0.5, 0.0)
                .decay_model(sssj_types::DecayModel::linear(8.0))
                .build()
                .name(),
            "STR-L2[linear:8]"
        );
        assert_eq!(
            JoinBuilder::new(0.5, 0.1).top_k(2).build().name(),
            "STR-L2-top2"
        );
        assert_eq!(
            JoinBuilder::new(0.5, 0.1).checked().build().name(),
            "checked(STR-L2)"
        );
        // Invalid combinations surface as errors, not panics, via try_build.
        assert!(JoinBuilder::new(0.5, 0.1).top_k(0).try_build().is_err());
    }

    #[test]
    fn builder_reorder_slack_fixes_disorder() {
        let mut shuffled = stream();
        shuffled.swap(0, 1); // timestamps 1.0, 0.0, 2.0, 3.0
        let strict: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let buffered: Vec<_> = JoinBuilder::new(0.5, 0.2)
            .reorder_slack(5.0)
            .pairs(shuffled)
            .collect();
        let mut a: Vec<_> = strict.iter().map(|p| p.key()).collect();
        let mut b: Vec<_> = buffered.iter().map(|p| p.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(
            JoinBuilder::new(0.5, 0.2).reorder_slack(5.0).build().name(),
            "Reorder(STR-L2)"
        );
    }

    #[test]
    fn wrapper_methods_are_last_call_wins_and_idempotent() {
        // A later reorder_slack replaces the earlier one; 0 disables.
        let b = JoinBuilder::new(0.5, 0.1)
            .reorder_slack(5.0)
            .reorder_slack(0.0);
        assert!(b.spec().wrappers.is_empty());
        let b = JoinBuilder::new(0.5, 0.1)
            .reorder_slack(5.0)
            .reorder_slack(2.0);
        assert_eq!(b.spec().wrappers, vec![WrapperSpec::Reorder(2.0)]);
        // checked/snapshot never stack.
        let b = JoinBuilder::new(0.5, 0.1)
            .snapshot()
            .checked()
            .snapshot()
            .checked();
        assert_eq!(
            b.spec().wrappers,
            vec![WrapperSpec::Snapshot, WrapperSpec::Checked]
        );
        b.build();
    }

    #[test]
    fn from_horizon_sets_lambda() {
        let b = JoinBuilder::from_horizon(0.5, 100.0);
        assert!((b.config().tau() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pair_iter_yields_streaming_pairs() {
        let pairs: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        // (0,3) survives too: e^{-0.2·3} ≈ 0.55 ≥ 0.5.
        assert_eq!(keys, vec![(0, 1), (1, 3), (0, 3)]);
    }

    #[test]
    fn pair_iter_flushes_minibatch_at_end() {
        // MB reports within-window pairs only at flush; the iterator must
        // still surface them.
        let str_pairs: Vec<_> = JoinBuilder::new(0.5, 0.2).pairs(stream()).collect();
        let mb_pairs: Vec<_> = JoinBuilder::new(0.5, 0.2)
            .minibatch()
            .pairs(stream())
            .collect();
        let mut a: Vec<_> = str_pairs.iter().map(|p| p.key()).collect();
        let mut b: Vec<_> = mb_pairs.iter().map(|p| p.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn pair_iter_is_fused_after_end() {
        let mut it = JoinBuilder::new(0.5, 0.2).pairs(stream());
        while it.next().is_some() {}
        assert!(it.next().is_none());
        assert!(it.join().stats().pairs_output > 0);
    }
}

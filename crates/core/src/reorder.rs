//! Bounded-slack reordering for out-of-order streams.
//!
//! Every join in this crate requires records in non-decreasing timestamp
//! order (the index prunes by "older than τ", so feeding it a record from
//! the past would query already-truncated state). Real feeds are rarely
//! perfectly ordered: multi-source ingestion, clock skew and retries all
//! produce records that arrive a little late. [`ReorderBuffer`] sits in
//! front of any [`StreamJoin`] and restores order, provided the disorder
//! is bounded: a record may arrive late, but only by at most `slack` time
//! units behind the newest timestamp seen so far.
//!
//! A record is *released* to the inner join once the watermark — the
//! newest timestamp seen minus `slack` — passes its timestamp, so the
//! buffer holds only the records inside one slack window and memory stays
//! bounded. Records that lose the race anyway (they arrive with a
//! timestamp older than the last released one) are *late*; [`ReorderBuffer::push`]
//! reports them and the [`StreamJoin::process`] impl counts and drops
//! them, which keeps the output a sound subset rather than corrupting the
//! index.
//!
//! The guarantee, property-tested in this module: on any stream whose
//! disorder is within `slack`, the buffered join produces exactly the
//! pairs of the same join over the stably time-sorted stream.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::StreamJoin;

/// A record waiting in the buffer, ordered by (timestamp, arrival rank)
/// so that equal timestamps are released in arrival order — the same
/// order a stable sort of the stream would produce.
struct Pending {
    t: f64,
    seq: u64,
    record: StreamRecord,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we pop oldest-first.
        // Timestamps are validated finite at construction, so total order
        // on the raw bits via total_cmp is safe and consistent with <.
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A record rejected because it arrived later than `slack` allows.
#[derive(Clone, Debug, PartialEq)]
pub struct LateRecord {
    /// The rejected record.
    pub record: StreamRecord,
    /// The timestamp of the newest record already released downstream;
    /// the rejected record is older than this.
    pub released_up_to: f64,
}

/// Buffers a slack-bounded out-of-order stream and feeds it, in
/// timestamp order, to any inner [`StreamJoin`].
///
/// ```
/// use sssj_core::{ReorderBuffer, SssjConfig, StreamJoin, Streaming};
/// use sssj_index::IndexKind;
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// let inner = Streaming::new(SssjConfig::new(0.7, 0.1), IndexKind::L2);
/// let mut join = ReorderBuffer::new(inner, 5.0);
/// let mut out = Vec::new();
/// // Timestamps 1.0 and 0.5 arrive swapped; the buffer fixes the order.
/// for (id, t) in [(0u64, 1.0), (1, 0.5), (2, 9.0)] {
///     let r = StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(3, 1.0)]));
///     join.process(&r, &mut out);
/// }
/// join.finish(&mut out);
/// // Only (1,0) joins: record 2 is more than τ = ln(1/0.7)/0.1 ≈ 3.6 away.
/// assert_eq!(out.len(), 1);
/// assert_eq!(join.late_dropped(), 0);
/// ```
pub struct ReorderBuffer<J> {
    inner: J,
    slack: f64,
    heap: BinaryHeap<Pending>,
    /// Newest timestamp seen on input; watermark = max_seen − slack.
    max_seen: f64,
    /// Timestamp of the newest record already handed to `inner`.
    released_up_to: f64,
    seq: u64,
    late_dropped: u64,
    peak_pending: usize,
}

impl<J: StreamJoin> ReorderBuffer<J> {
    /// Wraps `inner`, tolerating records up to `slack` time units behind
    /// the newest one seen. `slack = 0` admits only already-sorted input
    /// (and passes records straight through).
    pub fn new(inner: J, slack: f64) -> Self {
        assert!(
            slack.is_finite() && slack >= 0.0,
            "slack must be finite and non-negative: {slack}"
        );
        ReorderBuffer {
            inner,
            slack,
            heap: BinaryHeap::new(),
            max_seen: f64::NEG_INFINITY,
            released_up_to: f64::NEG_INFINITY,
            seq: 0,
            late_dropped: 0,
            peak_pending: 0,
        }
    }

    /// Accepts one record, appending any pairs completed by records this
    /// arrival releases. Returns `Err` if the record is too late to be
    /// processed in order (the stream violated the slack bound); the
    /// record is *not* counted as dropped — the caller decides.
    pub fn push(
        &mut self,
        record: &StreamRecord,
        out: &mut Vec<SimilarPair>,
    ) -> Result<(), LateRecord> {
        let t = record.t.seconds();
        if t < self.released_up_to {
            return Err(LateRecord {
                record: record.clone(),
                released_up_to: self.released_up_to,
            });
        }
        self.heap.push(Pending {
            t,
            seq: self.seq,
            record: record.clone(),
        });
        self.seq += 1;
        self.peak_pending = self.peak_pending.max(self.heap.len());
        if t > self.max_seen {
            self.max_seen = t;
        }
        let watermark = self.max_seen - self.slack;
        while self.heap.peek().is_some_and(|p| p.t <= watermark) {
            let p = self.heap.pop().expect("peeked");
            self.released_up_to = p.t;
            self.inner.process(&p.record, out);
        }
        Ok(())
    }

    /// The number of records currently buffered (not yet released).
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// The largest number of records ever buffered at once. Bounded by
    /// the number of arrivals within one slack window.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Records dropped by [`StreamJoin::process`] because they were late.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// The reordering slack this buffer was built with.
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// The inner join (e.g. to inspect index state).
    pub fn inner(&self) -> &J {
        &self.inner
    }

    /// Consumes the buffer, flushing everything pending, and returns the
    /// inner join together with any final output.
    pub fn into_inner(mut self, out: &mut Vec<SimilarPair>) -> J {
        self.drain(out);
        self.inner.finish(out);
        self.inner
    }

    fn drain(&mut self, out: &mut Vec<SimilarPair>) {
        while let Some(p) = self.heap.pop() {
            self.released_up_to = p.t;
            self.inner.process(&p.record, out);
        }
    }
}

impl<J: StreamJoin> StreamJoin for ReorderBuffer<J> {
    /// Like [`ReorderBuffer::push`], but drops late records (counted in
    /// [`ReorderBuffer::late_dropped`]) instead of reporting them, so the
    /// buffer can stand in anywhere a [`StreamJoin`] is expected.
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        if self.push(record, out).is_err() {
            self.late_dropped += 1;
        }
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        self.drain(out);
        self.inner.finish(out);
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        format!("Reorder({})", self.inner.name())
    }

    fn resume_point(&self) -> Option<(u64, f64)> {
        self.inner.resume_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SssjConfig, Streaming};
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn rec(id: u64, t: f64, dim: u32) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(&[(dim, 1.0)]))
    }

    fn join() -> Streaming {
        Streaming::new(SssjConfig::new(0.7, 0.1), IndexKind::L2)
    }

    fn keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
        let mut k: Vec<_> = pairs.iter().map(|p| p.key()).collect();
        k.sort_unstable();
        k
    }

    #[test]
    fn sorted_stream_passes_through_with_zero_slack() {
        let mut buffered = ReorderBuffer::new(join(), 0.0);
        let mut direct = join();
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for i in 0..20 {
            let r = rec(i, i as f64 * 0.5, (i % 3) as u32);
            buffered.process(&r, &mut got);
            direct.process(&r, &mut want);
        }
        buffered.finish(&mut got);
        direct.finish(&mut want);
        assert_eq!(keys(&got), keys(&want));
        assert_eq!(buffered.late_dropped(), 0);
    }

    #[test]
    fn swapped_pair_is_fixed_within_slack() {
        let mut buffered = ReorderBuffer::new(join(), 2.0);
        let mut out = Vec::new();
        buffered.process(&rec(0, 1.0, 7), &mut out);
        buffered.process(&rec(1, 0.0, 7), &mut out); // 1.0 behind, within slack
        buffered.finish(&mut out);
        assert_eq!(keys(&out), vec![(0, 1)]);
        assert_eq!(buffered.late_dropped(), 0);
    }

    #[test]
    fn late_record_is_dropped_and_counted() {
        let mut buffered = ReorderBuffer::new(join(), 1.0);
        let mut out = Vec::new();
        buffered.process(&rec(0, 0.0, 7), &mut out);
        buffered.process(&rec(1, 10.0, 7), &mut out); // releases t=0 and t=10? no: watermark 9, releases t=0
        buffered.process(&rec(2, 12.0, 7), &mut out); // releases t=10
        assert_eq!(buffered.late_dropped(), 0);
        // t=5 is older than the released t=10: must be rejected.
        buffered.process(&rec(3, 5.0, 7), &mut out);
        assert_eq!(buffered.late_dropped(), 1);
        buffered.finish(&mut out);
        // Only the (1,2) pair at Δt=2 survives; the dropped record joins nothing.
        assert_eq!(keys(&out), vec![(1, 2)]);
    }

    #[test]
    fn push_reports_late_records_without_dropping() {
        let mut buffered = ReorderBuffer::new(join(), 0.0);
        let mut out = Vec::new();
        buffered.push(&rec(0, 5.0, 1), &mut out).unwrap();
        let err = buffered.push(&rec(1, 1.0, 1), &mut out).unwrap_err();
        assert_eq!(err.record.id, 1);
        assert_eq!(err.released_up_to, 5.0);
        assert_eq!(buffered.late_dropped(), 0, "push does not count drops");
    }

    #[test]
    fn equal_timestamps_release_in_arrival_order() {
        // With λ=0 and identical vectors every pair joins; the pair ids
        // must come out with the earlier-arrived record as `left`.
        let mut buffered = ReorderBuffer::new(
            Streaming::new(SssjConfig::new(0.5, 0.0), IndexKind::L2),
            1.0,
        );
        let mut out = Vec::new();
        for id in 0..3 {
            buffered.process(&rec(id, 1.0, 4), &mut out);
        }
        buffered.finish(&mut out);
        assert_eq!(keys(&out), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn pending_and_peak_track_buffer_occupancy() {
        let mut buffered = ReorderBuffer::new(join(), 100.0);
        let mut out = Vec::new();
        for i in 0..5 {
            buffered.process(&rec(i, i as f64, 1), &mut out);
        }
        assert_eq!(buffered.pending(), 5, "all within slack, none released");
        assert_eq!(buffered.peak_pending(), 5);
        buffered.process(&rec(5, 150.0, 1), &mut out);
        assert!(buffered.pending() <= 2, "watermark 50 released the backlog");
        buffered.finish(&mut out);
        assert_eq!(buffered.pending(), 0);
        assert_eq!(buffered.peak_pending(), 6);
    }

    #[test]
    fn into_inner_flushes_and_returns_join() {
        let mut buffered = ReorderBuffer::new(join(), 10.0);
        let mut out = Vec::new();
        buffered.process(&rec(0, 0.0, 2), &mut out);
        buffered.process(&rec(1, 1.0, 2), &mut out);
        assert!(out.is_empty(), "still buffered");
        let inner = buffered.into_inner(&mut out);
        assert_eq!(keys(&out), vec![(0, 1)]);
        assert!(inner.name().starts_with("STR"));
    }

    #[test]
    fn name_and_stats_delegate() {
        let buffered = ReorderBuffer::new(join(), 1.0);
        assert_eq!(buffered.name(), "Reorder(STR-L2)");
        assert_eq!(buffered.stats().candidates, 0);
        assert_eq!(buffered.live_postings(), 0);
        assert_eq!(buffered.slack(), 1.0);
        assert_eq!(buffered.inner().kind(), IndexKind::L2);
    }

    #[test]
    #[should_panic(expected = "slack must be finite")]
    fn negative_slack_rejected() {
        let _ = ReorderBuffer::new(join(), -1.0);
    }
}

//! Online self-verification: run a join alongside the exact oracle.
//!
//! [`CheckedJoin`] wraps any [`StreamJoin`] and shadows it with the
//! brute-force sliding-window join, cross-checking the output after
//! every record. It is O(n·w) like the oracle — a debugging and testing
//! aid for downstream users integrating custom pipelines, not a
//! production configuration.

use std::collections::{HashSet, VecDeque};

use sssj_metrics::JoinStats;
use sssj_types::{dot, Decay, SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;
use crate::config::SssjConfig;

/// How far a similarity may sit from θ before a membership mismatch is
/// considered a real divergence rather than float noise at the boundary.
const BOUNDARY_SLACK: f64 = 1e-9;

/// A [`StreamJoin`] wrapper that verifies every emitted pair against the
/// exact sliding-window oracle and panics on divergence.
pub struct CheckedJoin {
    inner: Box<dyn StreamJoin>,
    config: SssjConfig,
    decay: Decay,
    tau: f64,
    window: VecDeque<StreamRecord>,
    /// Pairs the inner join owes us (completed but possibly buffered,
    /// e.g. by MiniBatch).
    owed: HashSet<(u64, u64)>,
    /// Pairs whose similarity sits within [`BOUNDARY_SLACK`] of θ —
    /// reporting them is acceptable either way.
    optional: HashSet<(u64, u64)>,
}

impl CheckedJoin {
    /// Wraps a join for online verification.
    pub fn new(inner: Box<dyn StreamJoin>, config: SssjConfig) -> Self {
        CheckedJoin {
            inner,
            config,
            decay: config.decay(),
            tau: config.tau(),
            window: VecDeque::new(),
            owed: HashSet::new(),
            optional: HashSet::new(),
        }
    }

    fn settle(&mut self, reported: &[SimilarPair]) {
        for p in reported {
            if !self.owed.remove(&p.key()) && !self.optional.remove(&p.key()) {
                panic!(
                    "{}: reported pair {:?} (sim {}) the oracle never expected",
                    self.inner.name(),
                    p.key(),
                    p.similarity
                );
            }
        }
    }
}

impl StreamJoin for CheckedJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        // Oracle step.
        while let Some(front) = self.window.front() {
            if record.t.delta(front.t) > self.tau {
                self.window.pop_front();
            } else {
                break;
            }
        }
        for old in &self.window {
            let sim = self
                .decay
                .apply(dot(&record.vector, &old.vector), record.t.delta(old.t));
            let key = (old.id.min(record.id), old.id.max(record.id));
            if sim >= self.config.theta + BOUNDARY_SLACK {
                self.owed.insert(key);
            } else if sim >= self.config.theta - BOUNDARY_SLACK {
                // Within float slack of the threshold: either outcome is
                // acceptable.
                self.optional.insert(key);
            }
        }
        self.window.push_back(record.clone());

        // Subject step.
        let start = out.len();
        self.inner.process(record, out);
        let reported: Vec<SimilarPair> = out[start..].to_vec();
        self.settle(&reported);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        let start = out.len();
        self.inner.finish(out);
        let reported: Vec<SimilarPair> = out[start..].to_vec();
        self.settle(&reported);
        // Every clearly-similar pair must have been reported by now;
        // unreported boundary pairs are fine.
        if !self.owed.is_empty() {
            let mut missing: Vec<_> = self.owed.iter().copied().collect();
            missing.sort_unstable();
            panic!(
                "{}: {} expected pairs never reported, e.g. {:?}",
                self.inner.name(),
                missing.len(),
                &missing[..missing.len().min(5)]
            );
        }
    }

    fn stats(&self) -> JoinStats {
        self.inner.stats()
    }

    fn live_postings(&self) -> u64 {
        self.inner.live_postings()
    }

    fn name(&self) -> String {
        format!("checked({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{build_algorithm, run_stream, Framework};
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn stream() -> Vec<StreamRecord> {
        (0..50)
            .map(|i| {
                StreamRecord::new(
                    i,
                    Timestamp::new(i as f64 * 0.5),
                    unit_vector(&[(1 + (i % 5) as u32, 1.0), (20, 0.4)]),
                )
            })
            .collect()
    }

    #[test]
    fn correct_joins_pass_verification() {
        let config = SssjConfig::new(0.6, 0.05);
        for framework in Framework::ALL {
            for kind in IndexKind::ALL {
                let mut checked =
                    CheckedJoin::new(build_algorithm(framework, kind, config), config);
                let out = run_stream(&mut checked, &stream());
                assert!(!out.is_empty(), "{framework}-{kind}");
                assert!(checked.name().starts_with("checked("));
            }
        }
    }

    /// A deliberately broken join: drops every other pair.
    struct Lossy {
        inner: Box<dyn StreamJoin>,
        parity: bool,
    }

    impl StreamJoin for Lossy {
        fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
            let mut mine = Vec::new();
            self.inner.process(record, &mut mine);
            for p in mine {
                self.parity = !self.parity;
                if self.parity {
                    out.push(p);
                }
            }
        }
        fn finish(&mut self, _out: &mut Vec<SimilarPair>) {}
        fn stats(&self) -> JoinStats {
            self.inner.stats()
        }
        fn live_postings(&self) -> u64 {
            self.inner.live_postings()
        }
        fn name(&self) -> String {
            "lossy".into()
        }
    }

    #[test]
    #[should_panic(expected = "never reported")]
    fn missing_pairs_are_detected() {
        let config = SssjConfig::new(0.6, 0.05);
        let lossy = Lossy {
            inner: build_algorithm(Framework::Streaming, IndexKind::L2, config),
            parity: false,
        };
        let mut checked = CheckedJoin::new(Box::new(lossy), config);
        run_stream(&mut checked, &stream());
    }

    /// A join that hallucinates a pair.
    struct Noisy {
        inner: Box<dyn StreamJoin>,
        emitted: bool,
    }

    impl StreamJoin for Noisy {
        fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
            self.inner.process(record, out);
            if !self.emitted && record.id == 10 {
                self.emitted = true;
                out.push(SimilarPair::new(0, record.id, 0.99));
            }
        }
        fn finish(&mut self, out: &mut Vec<SimilarPair>) {
            self.inner.finish(out);
        }
        fn stats(&self) -> JoinStats {
            self.inner.stats()
        }
        fn live_postings(&self) -> u64 {
            self.inner.live_postings()
        }
        fn name(&self) -> String {
            "noisy".into()
        }
    }

    #[test]
    #[should_panic(expected = "never expected")]
    fn spurious_pairs_are_detected() {
        let config = SssjConfig::new(0.9, 0.5);
        let noisy = Noisy {
            inner: build_algorithm(Framework::Streaming, IndexKind::L2, config),
            emitted: false,
        };
        let mut checked = CheckedJoin::new(Box::new(noisy), config);
        run_stream(&mut checked, &stream());
    }
}

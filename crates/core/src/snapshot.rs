//! Stop/resume support: snapshot a streaming join to bytes and restore
//! it later with identical future output.
//!
//! The join's *output-relevant* state is a deterministic function of the
//! records still inside the horizon `τ` — everything older can never pair
//! again. A [`RecoverableJoin`] therefore wraps [`Streaming`] and retains
//! the raw in-horizon records; [`RecoverableJoin::write_snapshot`]
//! serialises the configuration, the AP running-max vector `m` (which
//! alone accumulates beyond the horizon — it affects indexing decisions,
//! not output) and the buffered records. [`read_snapshot`] rebuilds the
//! join by replaying the buffer with output suppressed: those pairs were
//! already reported before the snapshot.
//!
//! The guarantee is **output equivalence**, not bit-identical internal
//! state: a restored join reports exactly the pairs the uninterrupted run
//! would report from the resume point on (tested in
//! `tests/snapshot_roundtrip.rs` against every index variant).
//!
//! Layout (all little-endian), hand-rolled like the dataset format in
//! `sssj-data` — no serde, nothing to audit but this file:
//!
//! ```text
//! magic   b"SSSJSNAP"           8 bytes
//! version u8 = 1
//! kind    u8 (0 INV, 1 AP, 2 L2AP, 3 L2)
//! theta   f64
//! lambda  f64
//! m_len   u32                   entries of the max vector
//! m       (u32 dim, f64 value) × m_len
//! count   u64                   buffered in-horizon records
//! record  repeated:
//!   id    u64
//!   t     f64
//!   nnz   u32
//!   dims  u32 × nnz (strictly increasing)
//!   ws    f64 × nnz (positive, finite)
//! ```
//!
//! Version 2 ([`RecoverableJoin::write_snapshot_compressed`]) keeps the
//! same header through `lambda` and re-encodes the payload with
//! delta+varint coding (see [`sssj_collections::varint`]): ids and
//! timestamps are strictly/weakly increasing across the buffer and
//! dimension ids are strictly increasing within a vector, so their deltas
//! are small. Weights stay as raw `f64` bits — they are the quantities
//! the output-equivalence guarantee rests on, and lossy coding would move
//! pairs across the `θ` boundary. [`read_snapshot`] accepts both
//! versions transparently.

use std::collections::VecDeque;
use std::io::{self, Read, Write};

use sssj_collections::varint;
use sssj_index::IndexKind;
use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

use crate::algorithm::StreamJoin;
use crate::config::SssjConfig;
use crate::streaming::Streaming;

const MAGIC: &[u8; 8] = b"SSSJSNAP";
const VERSION: u8 = 1;
const VERSION_COMPRESSED: u8 = 2;

/// Largest dimension id a snapshot (or WAL frame — `sssj-store` reuses
/// the bound) may carry.
///
/// The join keeps one posting-list slot per dimension and the running
/// max vector is dense, so a dimension id taken from untrusted bytes
/// translates directly into an attacker-chosen allocation: every reader
/// must reject ids above this bound **before** any structure sized by
/// the id is touched ([`read_snapshot`] validates each id as it is
/// decoded, ahead of `seed_max` and ahead of replaying the record into
/// the posting lists). 2²⁴ ≈ 16.8 M caps that allocation at ~hundreds
/// of MB while still covering the paper's 10⁵–10⁶-dimensional corpora
/// with an order of magnitude to spare.
pub const MAX_SNAPSHOT_DIM: u32 = 1 << 24;

/// Errors from restoring a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// I/O failure.
    Io(io::Error),
    /// Structural corruption or unsupported version.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Encodes a max-vector aux blob (the [`crate::Checkpointable`] aux
/// state of [`Streaming`]): entry count, then per entry the dimension as
/// a strictly-increasing delta varint and the raw `f64` value. Entries
/// are sorted by dimension here, so callers can pass
/// [`Streaming::max_entries`] directly.
pub fn write_max_aux(entries: &[(u32, f64)], out: &mut Vec<u8>) {
    let mut sorted: Vec<(u32, f64)> = entries.to_vec();
    sorted.sort_unstable_by_key(|&(d, _)| d);
    varint::write_u64(sorted.len() as u64, out);
    let mut prev = 0u64;
    for (dim, v) in sorted {
        varint::write_u64(dim as u64 - prev, out);
        prev = dim as u64 + 1;
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes an aux blob written by [`write_max_aux`], applying the same
/// untrusted-input validation as [`read_snapshot`]: dimension ids are
/// rejected above [`MAX_SNAPSHOT_DIM`] *before* anything is sized from
/// them, and values must be finite and in `(0, 1]`.
pub fn read_max_aux(bytes: &[u8]) -> Result<Vec<(u32, f64)>, String> {
    let mut pos = 0usize;
    let u64_at = |bytes: &[u8], pos: &mut usize| -> Result<u64, String> {
        let (v, n) = varint::read_u64(&bytes[*pos..]).map_err(|e| format!("varint: {e}"))?;
        *pos += n;
        Ok(v)
    };
    let len = u64_at(bytes, &mut pos)?;
    if len > MAX_SNAPSHOT_DIM as u64 {
        return Err(format!("absurd aux length {len}"));
    }
    let mut entries = Vec::with_capacity((len as usize).min(65_536));
    let mut prev = 0u64;
    for _ in 0..len {
        let dim = prev + u64_at(bytes, &mut pos)?;
        if dim > MAX_SNAPSHOT_DIM as u64 {
            return Err(format!("aux dimension {dim} too large"));
        }
        prev = dim + 1;
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= bytes.len())
            .ok_or("truncated aux value")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[pos..end]);
        pos = end;
        let v = f64::from_le_bytes(b);
        if !v.is_finite() || v <= 0.0 || v > 1.0 + 1e-9 {
            return Err(format!("invalid aux value {v}"));
        }
        entries.push((dim as u32, v));
    }
    if pos != bytes.len() {
        return Err(format!("{} trailing aux bytes", bytes.len() - pos));
    }
    Ok(entries)
}

fn kind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::Inv => 0,
        IndexKind::Ap => 1,
        IndexKind::L2ap => 2,
        IndexKind::L2 => 3,
    }
}

fn kind_from_tag(tag: u8) -> Option<IndexKind> {
    Some(match tag {
        0 => IndexKind::Inv,
        1 => IndexKind::Ap,
        2 => IndexKind::L2ap,
        3 => IndexKind::L2,
        _ => return None,
    })
}

/// A [`Streaming`] join that can be checkpointed.
///
/// Retains the raw records inside the horizon (the same asymptotic
/// footprint the underlying index already pays) and otherwise behaves
/// exactly like the wrapped join.
///
/// ```
/// use sssj_core::{read_snapshot, RecoverableJoin, SssjConfig, StreamJoin};
/// use sssj_index::IndexKind;
/// use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
///
/// let config = SssjConfig::new(0.7, 0.1);
/// let mut join = RecoverableJoin::new(config, IndexKind::L2);
/// let mut out = Vec::new();
/// join.process(
///     &StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(1, 1.0)])),
///     &mut out,
/// );
///
/// let mut bytes = Vec::new();
/// join.write_snapshot(&mut bytes).unwrap();
/// let mut restored = read_snapshot(&bytes[..]).unwrap();
///
/// // The restored join finds the pair with the pre-snapshot record.
/// restored.process(
///     &StreamRecord::new(1, Timestamp::new(1.0), unit_vector(&[(1, 1.0)])),
///     &mut out,
/// );
/// assert_eq!(out.len(), 1);
/// ```
pub struct RecoverableJoin {
    join: Streaming,
    config: SssjConfig,
    kind: IndexKind,
    tau: f64,
    buffer: VecDeque<StreamRecord>,
}

impl RecoverableJoin {
    /// Creates a checkpointable STR join.
    pub fn new(config: SssjConfig, kind: IndexKind) -> Self {
        RecoverableJoin {
            join: Streaming::new(config, kind),
            config,
            kind,
            tau: config.tau(),
            buffer: VecDeque::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SssjConfig {
        self.config
    }

    /// The index variant.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Records currently buffered for snapshotting (the in-horizon set).
    pub fn buffered_records(&self) -> usize {
        self.buffer.len()
    }

    /// Serialises the join state. The join remains usable afterwards.
    pub fn write_snapshot<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION, kind_tag(self.kind)])?;
        w.write_all(&self.config.theta.to_le_bytes())?;
        w.write_all(&self.config.lambda.to_le_bytes())?;
        let m = self.join.max_entries();
        w.write_all(&(m.len() as u32).to_le_bytes())?;
        for (dim, v) in m {
            w.write_all(&dim.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&(self.buffer.len() as u64).to_le_bytes())?;
        for r in &self.buffer {
            w.write_all(&r.id.to_le_bytes())?;
            w.write_all(&r.t.seconds().to_le_bytes())?;
            w.write_all(&(r.vector.nnz() as u32).to_le_bytes())?;
            for &d in r.vector.dims() {
                w.write_all(&d.to_le_bytes())?;
            }
            for &x in r.vector.weights() {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Serialises the join state in the delta+varint format (version 2).
    ///
    /// Typically 25–45 % smaller than [`RecoverableJoin::write_snapshot`]
    /// on sparse high-dimensional streams (ids, counts and dimension ids
    /// shrink to 1–2 bytes each; weights stay exact). [`read_snapshot`]
    /// reads either format.
    pub fn write_snapshot_compressed<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION_COMPRESSED);
        out.push(kind_tag(self.kind));
        out.extend_from_slice(&self.config.theta.to_le_bytes());
        out.extend_from_slice(&self.config.lambda.to_le_bytes());

        let mut m = self.join.max_entries();
        m.sort_unstable_by_key(|&(d, _)| d);
        varint::write_u64(m.len() as u64, &mut out);
        let mut prev_dim = 0u64;
        for (dim, v) in m {
            // Strictly increasing after the sort: delta-1 except the first.
            let delta = dim as u64 - prev_dim;
            varint::write_u64(delta, &mut out);
            prev_dim = dim as u64 + 1;
            out.extend_from_slice(&v.to_le_bytes());
        }

        varint::write_u64(self.buffer.len() as u64, &mut out);
        let mut prev_id = 0u64;
        let mut prev_t_bits = 0u64;
        for r in &self.buffer {
            varint::write_i64(r.id.wrapping_sub(prev_id) as i64, &mut out);
            prev_id = r.id;
            let t_bits = r.t.seconds().to_bits();
            varint::write_i64(t_bits.wrapping_sub(prev_t_bits) as i64, &mut out);
            prev_t_bits = t_bits;
            varint::write_u64(r.vector.nnz() as u64, &mut out);
            let mut prev = 0u64;
            for &d in r.vector.dims() {
                varint::write_u64(d as u64 - prev, &mut out);
                prev = d as u64 + 1;
            }
            for &x in r.vector.weights() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        w.write_all(&out)
    }
}

impl StreamJoin for RecoverableJoin {
    fn process(&mut self, record: &StreamRecord, out: &mut Vec<SimilarPair>) {
        let now = record.t.seconds();
        while let Some(front) = self.buffer.front() {
            if now - front.t.seconds() > self.tau {
                self.buffer.pop_front();
            } else {
                break;
            }
        }
        self.buffer.push_back(record.clone());
        self.join.process(record, out);
    }

    fn finish(&mut self, out: &mut Vec<SimilarPair>) {
        self.join.finish(out);
    }

    fn stats(&self) -> JoinStats {
        self.join.stats()
    }

    fn live_postings(&self) -> u64 {
        self.join.live_postings()
    }

    fn name(&self) -> String {
        self.join.name()
    }
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Restores a join from a snapshot written by
/// [`RecoverableJoin::write_snapshot`].
///
/// Validates every structural invariant, so corrupted input yields
/// [`SnapshotError::Corrupt`] rather than a malformed join.
pub fn read_snapshot<R: Read>(mut r: R) -> Result<RecoverableJoin, SnapshotError> {
    let magic = read_exact::<_, 8>(&mut r)?;
    if &magic != MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let [version, kind_tag] = read_exact::<_, 2>(&mut r)?;
    if version != VERSION && version != VERSION_COMPRESSED {
        return Err(SnapshotError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let kind = kind_from_tag(kind_tag)
        .ok_or_else(|| SnapshotError::Corrupt(format!("unknown index kind {kind_tag}")))?;
    let theta = f64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
    let lambda = f64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
    if !(theta > 0.0 && theta <= 1.0 && lambda.is_finite() && lambda >= 0.0) {
        return Err(SnapshotError::Corrupt(format!(
            "invalid parameters θ={theta} λ={lambda}"
        )));
    }
    let config = SssjConfig::new(theta, lambda);
    let mut restored = RecoverableJoin::new(config, kind);

    if version == VERSION_COMPRESSED {
        read_compressed_body(&mut r, &mut restored)?;
        return Ok(restored);
    }

    let m_len = u32::from_le_bytes(read_exact::<_, 4>(&mut r)?);
    if m_len > MAX_SNAPSHOT_DIM {
        return Err(SnapshotError::Corrupt(format!("absurd m length {m_len}")));
    }
    let mut maxima = Vec::with_capacity((m_len as usize).min(65_536));
    for _ in 0..m_len {
        let dim = u32::from_le_bytes(read_exact::<_, 4>(&mut r)?);
        if dim > MAX_SNAPSHOT_DIM {
            return Err(SnapshotError::Corrupt(format!("dimension {dim} too large")));
        }
        let v = f64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
        if !v.is_finite() || v <= 0.0 || v > 1.0 + 1e-9 {
            return Err(SnapshotError::Corrupt(format!("invalid max value {v}")));
        }
        maxima.push((dim, v));
    }
    restored.join.seed_max(maxima);

    let count = u64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
    if count > u32::MAX as u64 {
        return Err(SnapshotError::Corrupt(format!(
            "absurd record count {count}"
        )));
    }
    let mut suppressed = Vec::new();
    let mut prev_t = f64::NEG_INFINITY;
    for _ in 0..count {
        let id = u64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
        let t = f64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
        if !t.is_finite() || t < prev_t {
            return Err(SnapshotError::Corrupt(format!("bad timestamp {t}")));
        }
        prev_t = t;
        let nnz = u32::from_le_bytes(read_exact::<_, 4>(&mut r)?);
        let mut dims = Vec::with_capacity((nnz as usize).min(65_536));
        let mut prev_dim = None;
        for _ in 0..nnz {
            let d = u32::from_le_bytes(read_exact::<_, 4>(&mut r)?);
            if d > MAX_SNAPSHOT_DIM {
                return Err(SnapshotError::Corrupt(format!("dimension {d} too large")));
            }
            if prev_dim.is_some_and(|p| d <= p) {
                return Err(SnapshotError::Corrupt("dims not increasing".into()));
            }
            prev_dim = Some(d);
            dims.push(d);
        }
        // Never pre-allocate from an untrusted count: a corrupted nnz
        // must hit EOF, not an out-of-memory abort.
        let mut b = SparseVectorBuilder::with_capacity((nnz as usize).min(65_536));
        for d in dims {
            let x = f64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
            // Stored vectors are unit-normalised, so no coordinate can
            // legitimately exceed 1.
            if !x.is_finite() || x <= 0.0 || x > 1.0 + 1e-9 {
                return Err(SnapshotError::Corrupt(format!("bad weight {x}")));
            }
            b.push(d, x);
        }
        let vector = b
            .build()
            .map_err(|e| SnapshotError::Corrupt(format!("bad vector: {e}")))?;
        let record = StreamRecord::new(id, Timestamp::new(t), vector);
        // Replay with output suppressed: these pairs were reported
        // before the snapshot was taken.
        restored.process(&record, &mut suppressed);
        suppressed.clear();
    }
    Ok(restored)
}

/// A slice cursor for the varint-coded version-2 body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn corrupt(what: &str) -> SnapshotError {
        SnapshotError::Corrupt(what.to_string())
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let (v, n) = varint::read_u64(&self.buf[self.pos..])
            .map_err(|e| SnapshotError::Corrupt(format!("varint: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        let (v, n) = varint::read_i64(&self.buf[self.pos..])
            .map_err(|e| SnapshotError::Corrupt(format!("varint: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("truncated f64"))?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(f64::from_le_bytes(b))
    }
}

/// Decodes the version-2 (delta+varint) body and replays the buffer into
/// `restored`, applying the same validation as the version-1 path.
fn read_compressed_body<R: Read>(
    r: &mut R,
    restored: &mut RecoverableJoin,
) -> Result<(), SnapshotError> {
    let mut body = Vec::new();
    r.read_to_end(&mut body)?;
    let mut c = Cursor { buf: &body, pos: 0 };

    let m_len = c.u64()?;
    if m_len > MAX_SNAPSHOT_DIM as u64 {
        return Err(SnapshotError::Corrupt(format!("absurd m length {m_len}")));
    }
    let mut maxima = Vec::with_capacity((m_len as usize).min(65_536));
    let mut prev_dim = 0u64;
    for _ in 0..m_len {
        let dim = prev_dim + c.u64()?;
        if dim > MAX_SNAPSHOT_DIM as u64 {
            return Err(SnapshotError::Corrupt(format!("dimension {dim} too large")));
        }
        prev_dim = dim + 1;
        let v = c.f64()?;
        if !v.is_finite() || v <= 0.0 || v > 1.0 + 1e-9 {
            return Err(SnapshotError::Corrupt(format!("invalid max value {v}")));
        }
        maxima.push((dim as u32, v));
    }
    restored.join.seed_max(maxima);

    let count = c.u64()?;
    if count > u32::MAX as u64 {
        return Err(SnapshotError::Corrupt(format!(
            "absurd record count {count}"
        )));
    }
    let mut suppressed = Vec::new();
    let mut prev_id = 0u64;
    let mut prev_t_bits = 0u64;
    let mut prev_t = f64::NEG_INFINITY;
    for _ in 0..count {
        let id = prev_id.wrapping_add(c.i64()? as u64);
        prev_id = id;
        let t_bits = prev_t_bits.wrapping_add(c.i64()? as u64);
        prev_t_bits = t_bits;
        let t = f64::from_bits(t_bits);
        if !t.is_finite() || t < prev_t {
            return Err(SnapshotError::Corrupt(format!("bad timestamp {t}")));
        }
        prev_t = t;
        let nnz = c.u64()?;
        if nnz > MAX_SNAPSHOT_DIM as u64 {
            return Err(SnapshotError::Corrupt(format!("absurd nnz {nnz}")));
        }
        // Never pre-allocate from an untrusted count (see the v1 path).
        let mut b = SparseVectorBuilder::with_capacity((nnz as usize).min(65_536));
        let mut dims = Vec::with_capacity((nnz as usize).min(65_536));
        let mut prev = 0u64;
        for _ in 0..nnz {
            let d = prev + c.u64()?;
            if d > MAX_SNAPSHOT_DIM as u64 {
                return Err(SnapshotError::Corrupt(format!("dimension {d} too large")));
            }
            prev = d + 1;
            dims.push(d as u32);
        }
        for d in dims {
            let x = c.f64()?;
            if !x.is_finite() || x <= 0.0 || x > 1.0 + 1e-9 {
                return Err(SnapshotError::Corrupt(format!("bad weight {x}")));
            }
            b.push(d, x);
        }
        let vector = b
            .build()
            .map_err(|e| SnapshotError::Corrupt(format!("bad vector: {e}")))?;
        let record = StreamRecord::new(id, Timestamp::new(t), vector);
        restored.process(&record, &mut suppressed);
        suppressed.clear();
    }
    if c.pos != body.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes",
            body.len() - c.pos
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssj_types::vector::unit_vector;

    fn rec(id: u64, t: f64, entries: &[(u32, f64)]) -> StreamRecord {
        StreamRecord::new(id, Timestamp::new(t), unit_vector(entries))
    }

    #[test]
    fn buffer_tracks_horizon() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.5, 1.0), IndexKind::L2); // τ≈0.69
        let mut out = Vec::new();
        for i in 0..20 {
            j.process(&rec(i, i as f64, &[(1, 1.0)]), &mut out);
        }
        assert!(j.buffered_records() <= 2);
    }

    #[test]
    fn roundtrip_preserves_config() {
        let j = RecoverableJoin::new(SssjConfig::new(0.8, 0.05), IndexKind::L2ap);
        let mut bytes = Vec::new();
        j.write_snapshot(&mut bytes).unwrap();
        let r = read_snapshot(&bytes[..]).unwrap();
        assert_eq!(r.config(), SssjConfig::new(0.8, 0.05));
        assert_eq!(r.kind(), IndexKind::L2ap);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
        let mut out = Vec::new();
        j.process(&rec(0, 0.0, &[(1, 1.0), (3, 0.5)]), &mut out);
        let mut bytes = Vec::new();
        j.write_snapshot(&mut bytes).unwrap();
        for cut in [0, 4, 9, 17, bytes.len() - 1] {
            assert!(
                read_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut bytes = Vec::new();
        RecoverableJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2)
            .write_snapshot(&mut bytes)
            .unwrap();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            read_snapshot(&bytes[..]),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn compressed_roundtrip_preserves_config_and_state() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.6, 0.05), IndexKind::L2ap);
        let mut out = Vec::new();
        for i in 0..10 {
            j.process(
                &rec(i, i as f64, &[(2 * i as u32, 1.0), (100, 0.4)]),
                &mut out,
            );
        }
        let mut bytes = Vec::new();
        j.write_snapshot_compressed(&mut bytes).unwrap();
        let r = read_snapshot(&bytes[..]).unwrap();
        assert_eq!(r.config(), SssjConfig::new(0.6, 0.05));
        assert_eq!(r.kind(), IndexKind::L2ap);
        assert_eq!(r.buffered_records(), j.buffered_records());
    }

    #[test]
    fn compressed_is_smaller_on_realistic_buffers() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.5, 0.001), IndexKind::L2);
        let mut out = Vec::new();
        // Sparse vectors with small dims and dense ids, like a real feed.
        for i in 0..200u64 {
            let dims: Vec<(u32, f64)> = (0..8)
                .map(|k| ((i as u32 * 7 + k * 13) % 5000, 0.2 + 0.1 * k as f64))
                .collect();
            j.process(&rec(i, i as f64 * 0.5, &dims), &mut out);
        }
        let (mut raw, mut compressed) = (Vec::new(), Vec::new());
        j.write_snapshot(&mut raw).unwrap();
        j.write_snapshot_compressed(&mut compressed).unwrap();
        assert!(
            (compressed.len() as f64) < 0.8 * raw.len() as f64,
            "compressed {} vs raw {}: expected ≥20 % saving",
            compressed.len(),
            raw.len()
        );
    }

    #[test]
    fn compressed_truncations_are_rejected() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
        let mut out = Vec::new();
        j.process(&rec(0, 0.0, &[(1, 1.0), (30, 0.5)]), &mut out);
        j.process(&rec(1, 0.5, &[(1, 0.7), (31, 0.9)]), &mut out);
        let mut bytes = Vec::new();
        j.write_snapshot_compressed(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                read_snapshot(&bytes[..cut]).is_err(),
                "truncation at {cut}/{} must fail",
                bytes.len()
            );
        }
        // Trailing garbage is detected too.
        bytes.push(0x00);
        assert!(read_snapshot(&bytes[..]).is_err());
    }

    #[test]
    fn compressed_bitflips_never_panic() {
        let mut j = RecoverableJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
        let mut out = Vec::new();
        for i in 0..5 {
            j.process(&rec(i, i as f64, &[(i as u32, 1.0), (99, 0.3)]), &mut out);
        }
        let mut bytes = Vec::new();
        j.write_snapshot_compressed(&mut bytes).unwrap();
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x41;
            let _ = read_snapshot(&corrupted[..]); // any Result, no panic
        }
    }

    /// Fuzz-style header corruption: a crafted header carrying dimension
    /// ids (or counts) above `MAX_SNAPSHOT_DIM` must be rejected as
    /// `Corrupt` *before* any posting-list- or max-vector-sized
    /// allocation happens. The test completes instantly precisely
    /// because nothing is allocated from the hostile values.
    #[test]
    fn oversized_dims_in_header_are_rejected_before_allocation() {
        // Valid prefix: magic, version 1, kind L2, θ=0.5, λ=0.1.
        let mut base = Vec::new();
        base.extend_from_slice(MAGIC);
        base.push(VERSION);
        base.push(3);
        base.extend_from_slice(&0.5f64.to_le_bytes());
        base.extend_from_slice(&0.1f64.to_le_bytes());

        // A max-vector entry with a hostile dimension id.
        let mut bytes = base.clone();
        bytes.extend_from_slice(&1u32.to_le_bytes()); // m_len = 1
        bytes.extend_from_slice(&(MAX_SNAPSHOT_DIM + 1).to_le_bytes());
        bytes.extend_from_slice(&0.5f64.to_le_bytes());
        assert!(
            matches!(read_snapshot(&bytes[..]), Err(SnapshotError::Corrupt(m)) if m.contains("too large")),
        );

        // An absurd m_len must be rejected outright.
        let mut bytes = base.clone();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            matches!(read_snapshot(&bytes[..]), Err(SnapshotError::Corrupt(m)) if m.contains("absurd")),
        );

        // A record with a hostile dimension id (posting lists are sized
        // by dimension at replay; the id must never reach them).
        let mut bytes = base.clone();
        bytes.extend_from_slice(&0u32.to_le_bytes()); // m_len = 0
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one record
        bytes.extend_from_slice(&0u64.to_le_bytes()); // id
        bytes.extend_from_slice(&0.0f64.to_le_bytes()); // t
        bytes.extend_from_slice(&1u32.to_le_bytes()); // nnz
        bytes.extend_from_slice(&(MAX_SNAPSHOT_DIM + 7).to_le_bytes());
        bytes.extend_from_slice(&1.0f64.to_le_bytes());
        assert!(
            matches!(read_snapshot(&bytes[..]), Err(SnapshotError::Corrupt(m)) if m.contains("too large")),
        );

        // Random byte-flips across the whole header never panic.
        let mut ok = base.clone();
        ok.extend_from_slice(&0u32.to_le_bytes());
        ok.extend_from_slice(&0u64.to_le_bytes());
        for pos in 0..ok.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = ok.clone();
                corrupted[pos] ^= flip;
                let _ = read_snapshot(&corrupted[..]); // any Result, no panic
            }
        }
    }

    #[test]
    fn max_aux_roundtrips_and_rejects_corruption() {
        let entries = vec![(3u32, 0.25f64), (100, 1.0), (7, 0.5)];
        let mut blob = Vec::new();
        write_max_aux(&entries, &mut blob);
        let back = read_max_aux(&blob).unwrap();
        assert_eq!(back, vec![(3, 0.25), (7, 0.5), (100, 1.0)]);
        // Empty blob round-trips.
        let mut empty = Vec::new();
        write_max_aux(&[], &mut empty);
        assert!(read_max_aux(&empty).unwrap().is_empty());
        // Truncations and bit-flips never panic; truncations always err.
        for cut in 0..blob.len() {
            assert!(read_max_aux(&blob[..cut]).is_err(), "cut at {cut}");
        }
        for pos in 0..blob.len() {
            let mut corrupted = blob.clone();
            corrupted[pos] ^= 0x41;
            let _ = read_max_aux(&corrupted);
        }
        // A hostile dimension is rejected without allocation.
        let mut hostile = Vec::new();
        varint::write_u64(1, &mut hostile);
        varint::write_u64(MAX_SNAPSHOT_DIM as u64 + 1, &mut hostile);
        hostile.extend_from_slice(&0.5f64.to_le_bytes());
        assert!(read_max_aux(&hostile).unwrap_err().contains("too large"));
    }

    #[test]
    fn bad_kind_tag_rejected() {
        let mut bytes = Vec::new();
        RecoverableJoin::new(SssjConfig::new(0.5, 0.1), IndexKind::L2)
            .write_snapshot(&mut bytes)
            .unwrap();
        bytes[9] = 42;
        assert!(read_snapshot(&bytes[..]).is_err());
    }
}

#![warn(missing_docs)]
//! Streaming similarity self-join (SSSJ) — the core contribution of the
//! paper.
//!
//! Given an unbounded stream of timestamped unit vectors, a threshold `θ`
//! and a decay rate `λ`, report every pair with time-dependent similarity
//! `dot(x, y)·e^{-λ·|t(x)−t(y)|} ≥ θ`. The decay induces a *time horizon*
//! `τ = ln(1/θ)/λ` beyond which nothing can pair, which bounds state.
//!
//! Two frameworks solve the problem:
//!
//! * [`MiniBatch`] (MB, Algorithm 1 + §6.1) — buffers the stream in
//!   windows of length `τ`, builds a fresh batch index per window and
//!   queries it with the following window. Uses any batch index
//!   ([`sssj_index::BatchIndex`]) as a black box; reports within-window
//!   pairs with delay and probes pairs as far apart as `2τ`.
//! * [`Streaming`] (STR, Algorithms 5–8) — a single incrementally
//!   maintained index with *time filtering* built in: posting lists are
//!   pruned as they are scanned, bounds are decayed per entry, and old
//!   state is dropped the moment it falls behind the horizon.
//!
//! Both frameworks are instantiated with any [`sssj_index::IndexKind`];
//! the paper's headline configuration is STR with the L2 index.
//!
//! # One config surface: [`spec::JoinSpec`]
//!
//! The whole variant family — STR/MB × index, generalised decay, top-k,
//! LSH, sharding, plus the reorder/checked/snapshot wrappers — is
//! described by one declarative, serializable [`spec::JoinSpec`] and
//! built by its single factory [`spec::JoinSpec::build`]. The compact
//! text form (e.g. `str-l2?theta=0.7&lambda=0.01&reorder=5`) is what the
//! CLI and the net protocol speak; [`JoinBuilder`] is the fluent
//! front-end over the same spec.
//!
//! ```
//! use sssj_core::spec::JoinSpec;
//!
//! let spec: JoinSpec = "str-l2?theta=0.7&lambda=0.1".parse().unwrap();
//! let mut join = spec.build().unwrap();
//! # use sssj_core::StreamJoin;
//! # use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};
//! let mut out = Vec::new();
//! for (i, t) in [0.0, 1.0, 100.0].into_iter().enumerate() {
//!     let r = StreamRecord::new(i as u64, Timestamp::new(t), unit_vector(&[(1, 1.0)]));
//!     join.process(&r, &mut out);
//! }
//! // Identical vectors 0 and 1 are close in time; 2 is beyond the horizon.
//! assert_eq!(out.len(), 1);
//! assert_eq!((out[0].left, out[0].right), (0, 1));
//! ```

pub mod advisor;
pub mod algorithm;
pub mod api;
pub mod config;
pub mod decay_join;
pub mod latency;
pub mod minibatch;
pub mod pipeline;
pub mod reorder;
pub mod sink;
pub mod snapshot;
pub mod spec;
pub mod streaming;
pub mod telemetry;
pub mod topk;
pub mod verify;

pub use advisor::{advise, advise_from_examples, Advice, AdvisorError};
pub use algorithm::{
    build_algorithm, run_stream, Checkpointable, Framework, ShardableJoin, StreamJoin,
};
pub use api::{JoinBuilder, PairIter};
pub use config::SssjConfig;
pub use decay_join::DecayStreaming;
pub use latency::{measure_report_delay, DelayStats};
pub use minibatch::MiniBatch;
pub use pipeline::{run_threaded, PipelineOutput};
pub use reorder::{LateRecord, ReorderBuffer};
pub use sink::{PairSink, SinkedJoin};
pub use snapshot::{
    read_max_aux, read_snapshot, write_max_aux, RecoverableJoin, SnapshotError, MAX_SNAPSHOT_DIM,
};
pub use spec::{DecaySpec, EngineSpec, JoinSpec, LshSpec, ShardedInner, SpecError, WrapperSpec};
pub use streaming::Streaming;
pub use telemetry::TelemetryJoin;
pub use topk::TopKJoin;
pub use verify::CheckedJoin;

//! A two-stage pipeline: record production decoupled from the join.
//!
//! The paper's evaluation is single-threaded, and so are the join
//! algorithms — but in deployments the record source (parsing, network)
//! usually lives on its own thread. This module provides that shape: a
//! producer thread feeds a bounded channel (applying backpressure when
//! the join falls behind) and the join consumes on the calling thread.
//! The output is identical to the sequential [`crate::run_stream`], which
//! the tests assert.

use crossbeam_channel::bounded;

use sssj_metrics::JoinStats;
use sssj_types::{SimilarPair, StreamRecord};

use crate::algorithm::StreamJoin;

/// Result of a pipelined run.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// All reported pairs, in report order.
    pub pairs: Vec<SimilarPair>,
    /// The join's work counters.
    pub stats: JoinStats,
}

/// Runs `join` over the records produced by `source` on a separate
/// thread, with a bounded queue of `queue` records between the stages.
///
/// Panics in the producer propagate to the caller.
pub fn run_threaded<I>(join: &mut dyn StreamJoin, source: I, queue: usize) -> PipelineOutput
where
    I: IntoIterator<Item = StreamRecord>,
    I::IntoIter: Send,
{
    assert!(queue > 0, "queue must have room for at least one record");
    let iter = source.into_iter();
    let (tx, rx) = bounded::<StreamRecord>(queue);
    let mut pairs = Vec::new();
    std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            for record in iter {
                // The consumer hanging up (panic) makes send fail; just
                // stop producing.
                if tx.send(record).is_err() {
                    break;
                }
            }
        });
        for record in rx {
            join.process(&record, &mut pairs);
        }
        join.finish(&mut pairs);
        producer.join().expect("producer thread panicked");
    });
    PipelineOutput {
        pairs,
        stats: join.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{build_algorithm, run_stream, Framework};
    use crate::config::SssjConfig;
    use sssj_index::IndexKind;
    use sssj_types::{vector::unit_vector, Timestamp};

    fn stream(n: u64) -> Vec<StreamRecord> {
        (0..n)
            .map(|i| {
                StreamRecord::new(
                    i,
                    Timestamp::new(i as f64 * 0.3),
                    unit_vector(&[(1 + (i % 7) as u32, 1.0), (50, 0.5)]),
                )
            })
            .collect()
    }

    #[test]
    fn pipelined_output_equals_sequential() {
        let records = stream(300);
        let config = SssjConfig::new(0.6, 0.02);
        for framework in Framework::ALL {
            let mut seq_join = build_algorithm(framework, IndexKind::L2, config);
            let mut seq = run_stream(seq_join.as_mut(), &records);
            let mut piped_join = build_algorithm(framework, IndexKind::L2, config);
            let out = run_threaded(piped_join.as_mut(), records.clone(), 8);
            let mut piped = out.pairs;
            seq.sort_by_key(|p| p.key());
            piped.sort_by_key(|p| p.key());
            assert_eq!(seq.len(), piped.len(), "{framework}");
            for (a, b) in seq.iter().zip(&piped) {
                assert_eq!(a.key(), b.key(), "{framework}");
            }
            assert_eq!(out.stats.pairs_output, seq.len() as u64);
        }
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_loss() {
        let records = stream(200);
        let config = SssjConfig::new(0.6, 0.02);
        let mut join = build_algorithm(Framework::Streaming, IndexKind::L2, config);
        let out = run_threaded(join.as_mut(), records.clone(), 1);
        let mut seq_join = build_algorithm(Framework::Streaming, IndexKind::L2, config);
        let seq = run_stream(seq_join.as_mut(), &records);
        assert_eq!(out.pairs.len(), seq.len());
    }

    #[test]
    fn empty_source_is_fine() {
        let mut join = build_algorithm(
            Framework::Streaming,
            IndexKind::L2,
            SssjConfig::new(0.5, 0.1),
        );
        let out = run_threaded(join.as_mut(), Vec::new(), 4);
        assert!(out.pairs.is_empty());
    }

    #[test]
    #[should_panic(expected = "queue")]
    fn zero_queue_rejected() {
        let mut join = build_algorithm(
            Framework::Streaming,
            IndexKind::L2,
            SssjConfig::new(0.5, 0.1),
        );
        run_threaded(join.as_mut(), Vec::new(), 0);
    }
}

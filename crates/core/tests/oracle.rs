//! End-to-end oracle tests: every framework × index combination must
//! produce exactly the brute-force streaming join output.

use proptest::prelude::*;
use sssj_baseline::brute_force_stream;
use sssj_core::{build_algorithm, run_stream, Framework, SssjConfig};
use sssj_index::IndexKind;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

/// Random stream strategy: n records, arbitrary gaps, sparse vectors.
fn stream(n: usize, dims: u32, max_nnz: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0..dims, 0.05f64..1.0), 1..=max_nnz),
            0.0f64..5.0, // inter-arrival gap
        ),
        1..=n,
    )
    .prop_map(|items| {
        let mut t = 0.0;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (entries, gap))| {
                t += gap;
                let mut b = SparseVectorBuilder::new();
                for (d, w) in entries {
                    b.push(d, w);
                }
                StreamRecord::new(
                    i as u64,
                    Timestamp::new(t),
                    b.build_normalized().expect("positive weights"),
                )
            })
            .collect()
    })
}

/// Pair keys whose similarity is safely away from the θ boundary, and —
/// for robustness against float noise in Δt-boundary cases — away from
/// the horizon boundary too.
fn robust_keys(pairs: &[SimilarPair], theta: f64) -> Vec<(u64, u64)> {
    let mut keys: Vec<(u64, u64)> = pairs
        .iter()
        .filter(|p| (p.similarity - theta).abs() > 1e-9)
        .map(|p| p.key())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All eight algorithms equal the brute-force oracle.
    #[test]
    fn all_algorithms_match_bruteforce(
        records in stream(50, 20, 5),
        theta in 0.25f64..0.95,
        lambda in 0.0f64..0.5,
    ) {
        let config = SssjConfig::new(theta, lambda);
        let expected = robust_keys(&brute_force_stream(&records, theta, lambda), theta);
        for framework in Framework::ALL {
            for kind in IndexKind::ALL {
                let mut join = build_algorithm(framework, kind, config);
                let got = robust_keys(&run_stream(join.as_mut(), &records), theta);
                prop_assert_eq!(
                    &got, &expected,
                    "{}-{} disagrees at θ={} λ={}", framework, kind, theta, lambda
                );
            }
        }
    }

    /// Reported similarity scores equal the oracle's decayed scores.
    #[test]
    fn scores_match_bruteforce(
        records in stream(40, 16, 4),
        theta in 0.3f64..0.9,
        lambda in 0.001f64..0.3,
    ) {
        let config = SssjConfig::new(theta, lambda);
        let mut expected = brute_force_stream(&records, theta, lambda);
        expected.sort_by_key(|a| a.key());
        for framework in Framework::ALL {
            for kind in [IndexKind::L2, IndexKind::L2ap] {
                let mut join = build_algorithm(framework, kind, config);
                let mut got = run_stream(join.as_mut(), &records);
                got.sort_by_key(|a| a.key());
                for (e, g) in expected.iter().zip(got.iter()) {
                    if e.key() == g.key() {
                        prop_assert!(
                            (e.similarity - g.similarity).abs() < 1e-9,
                            "{}-{}: score mismatch on {:?}", framework, kind, e.key()
                        );
                    }
                }
            }
        }
    }

    /// No duplicates: each pair is reported exactly once.
    #[test]
    fn pairs_are_unique(
        records in stream(60, 10, 4),
        theta in 0.3f64..0.9,
        lambda in 0.0f64..0.3,
    ) {
        let config = SssjConfig::new(theta, lambda);
        for framework in Framework::ALL {
            let mut join = build_algorithm(framework, IndexKind::L2, config);
            let out = run_stream(join.as_mut(), &records);
            let mut keys: Vec<_> = out.iter().map(|p| p.key()).collect();
            keys.sort_unstable();
            let before = keys.len();
            keys.dedup();
            prop_assert_eq!(before, keys.len(), "{} duplicated pairs", framework);
        }
    }
}

/// Deterministic regression: a preset-generated stream across a parameter
/// grid, STR-L2 vs oracle — the headline configuration of the paper.
#[test]
fn preset_streams_match_oracle_on_grid() {
    use sssj_data::{generate, preset, Preset};
    for p in [Preset::Rcv1, Preset::Tweets] {
        let records = generate(&preset(p, 250));
        for theta in [0.5, 0.7, 0.9] {
            for lambda in [0.001, 0.01, 0.1] {
                let config = SssjConfig::new(theta, lambda);
                let expected = robust_keys(&brute_force_stream(&records, theta, lambda), theta);
                for framework in Framework::ALL {
                    for kind in IndexKind::ALL {
                        let mut join = build_algorithm(framework, kind, config);
                        let got = robust_keys(&run_stream(join.as_mut(), &records), theta);
                        assert_eq!(
                            got, expected,
                            "{framework}-{kind} on {p} θ={theta} λ={lambda}"
                        );
                    }
                }
            }
        }
    }
}

//! Property tests for the generalised-decay streaming join: for every
//! decay model, [`DecayStreaming`] must produce exactly the brute-force
//! oracle output on randomised streams.

use proptest::prelude::*;
use sssj_baseline::brute_force_stream_model;
use sssj_core::{DecayStreaming, StreamJoin};
use sssj_types::{DecayModel, SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

fn stream(n: usize, dims: u32, max_nnz: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0..dims, 0.05f64..1.0), 1..=max_nnz),
            0.0f64..3.0,
        ),
        1..=n,
    )
    .prop_map(|items| {
        let mut t = 0.0;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (entries, gap))| {
                t += gap;
                let mut b = SparseVectorBuilder::new();
                for (d, w) in entries {
                    b.push(d, w);
                }
                StreamRecord::new(
                    i as u64,
                    Timestamp::new(t),
                    b.build_normalized().expect("positive weights"),
                )
            })
            .collect()
    })
}

fn model_strategy() -> impl Strategy<Value = DecayModel> {
    prop_oneof![
        (0.01f64..1.0).prop_map(DecayModel::exponential),
        (0.5f64..20.0).prop_map(DecayModel::sliding_window),
        (0.5f64..20.0).prop_map(DecayModel::linear),
        ((0.5f64..3.0), (0.5f64..5.0)).prop_map(|(a, s)| DecayModel::polynomial(a, s)),
    ]
}

/// Keys away from the θ decision boundary and (for the discontinuous
/// sliding window) away from the horizon edge, so float noise cannot flip
/// membership between implementation and oracle.
fn robust_keys(
    pairs: &[SimilarPair],
    theta: f64,
    stream: &[StreamRecord],
    model: DecayModel,
) -> Vec<(u64, u64)> {
    let tau = model.horizon(theta);
    let time_of = |id: u64| {
        stream
            .iter()
            .find(|r| r.id == id)
            .expect("pair ids come from the stream")
            .t
    };
    let mut keys: Vec<(u64, u64)> = pairs
        .iter()
        .filter(|p| (p.similarity - theta).abs() > 1e-9)
        .filter(|p| (time_of(p.left).delta(time_of(p.right)) - tau).abs() > 1e-9)
        .map(|p| p.key())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn decay_streaming_matches_oracle(
        stream in stream(60, 10, 4),
        model in model_strategy(),
        theta in 0.3f64..0.95,
    ) {
        let oracle = brute_force_stream_model(&stream, theta, model);
        let mut join = DecayStreaming::new(theta, model);
        let mut got = Vec::new();
        for r in &stream {
            join.process(r, &mut got);
        }
        join.finish(&mut got);
        prop_assert_eq!(
            robust_keys(&got, theta, &stream, model),
            robust_keys(&oracle, theta, &stream, model)
        );
    }

    #[test]
    fn ablation_never_changes_output(
        stream in stream(50, 8, 3),
        model in model_strategy(),
        theta in 0.3f64..0.95,
    ) {
        let mut with = DecayStreaming::with_options(theta, model, true);
        let mut without = DecayStreaming::with_options(theta, model, false);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for r in &stream {
            with.process(r, &mut a);
            without.process(r, &mut b);
        }
        let mut ka: Vec<_> = a.iter().map(|p| p.key()).collect();
        let mut kb: Vec<_> = b.iter().map(|p| p.key()).collect();
        ka.sort_unstable();
        kb.sort_unstable();
        prop_assert_eq!(ka, kb);
        prop_assert!(with.stats().candidates <= without.stats().candidates);
    }

    #[test]
    fn reported_similarity_is_exact(
        stream in stream(40, 8, 3),
        model in model_strategy(),
        theta in 0.3f64..0.9,
    ) {
        let mut join = DecayStreaming::new(theta, model);
        let mut got = Vec::new();
        for r in &stream {
            join.process(r, &mut got);
        }
        let by_id: std::collections::HashMap<u64, &StreamRecord> =
            stream.iter().map(|r| (r.id, r)).collect();
        for p in &got {
            let a = by_id[&p.left];
            let b = by_id[&p.right];
            let expected = model.apply(
                sssj_types::dot(&a.vector, &b.vector),
                a.t.delta(b.t),
            );
            prop_assert!((p.similarity - expected).abs() < 1e-9);
            prop_assert!(p.similarity >= theta);
        }
    }
}

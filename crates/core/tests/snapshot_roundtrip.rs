//! Stop/resume correctness: a join snapshotted mid-stream and restored
//! must report exactly what the uninterrupted run reports from that point
//! on — for every index variant and across nested snapshots.

use proptest::prelude::*;
use sssj_core::{read_snapshot, run_stream, RecoverableJoin, SssjConfig, StreamJoin, Streaming};
use sssj_index::IndexKind;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

fn sorted_keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
    keys.sort_unstable();
    keys
}

fn random_stream(seed: u64, n: usize, dims: u32) -> Vec<StreamRecord> {
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n as u64)
        .map(|i| {
            t += rng.random_range(0.0..0.6);
            let mut b = SparseVectorBuilder::new();
            for _ in 0..rng.random_range(1..6) {
                b.push(rng.random_range(0..dims), rng.random_range(0.1..1.0));
            }
            StreamRecord::new(i, Timestamp::new(t), b.build_normalized().unwrap())
        })
        .collect()
}

/// Full-run output from `cut` onwards, for the reference join.
fn reference_tail(
    stream: &[StreamRecord],
    config: SssjConfig,
    kind: IndexKind,
    cut: usize,
) -> Vec<(u64, u64)> {
    let mut join = Streaming::new(config, kind);
    let mut pre = Vec::new();
    for r in &stream[..cut] {
        join.process(r, &mut pre);
    }
    let mut tail = Vec::new();
    for r in &stream[cut..] {
        join.process(r, &mut tail);
    }
    join.finish(&mut tail);
    sorted_keys(&tail)
}

#[test]
fn restored_join_continues_identically_for_all_kinds() {
    let stream = random_stream(21, 240, 15);
    let config = SssjConfig::new(0.6, 0.1);
    let cut = 120;
    for kind in IndexKind::ALL {
        let mut join = RecoverableJoin::new(config, kind);
        let mut pre = Vec::new();
        for r in &stream[..cut] {
            join.process(r, &mut pre);
        }
        let mut bytes = Vec::new();
        join.write_snapshot(&mut bytes).unwrap();
        let mut restored = read_snapshot(&bytes[..]).unwrap();
        let tail = run_stream(&mut restored, &stream[cut..]);
        assert_eq!(
            sorted_keys(&tail),
            reference_tail(&stream, config, kind, cut),
            "{kind}"
        );
    }
}

#[test]
fn snapshot_of_a_restored_join_still_works() {
    let stream = random_stream(33, 300, 12);
    let config = SssjConfig::new(0.55, 0.15);
    let kind = IndexKind::L2;
    let (c1, c2) = (100, 200);

    let mut join = RecoverableJoin::new(config, kind);
    let mut sink = Vec::new();
    for r in &stream[..c1] {
        join.process(r, &mut sink);
    }
    let mut b1 = Vec::new();
    join.write_snapshot(&mut b1).unwrap();

    let mut second = read_snapshot(&b1[..]).unwrap();
    for r in &stream[c1..c2] {
        second.process(r, &mut sink);
    }
    let mut b2 = Vec::new();
    second.write_snapshot(&mut b2).unwrap();

    let mut third = read_snapshot(&b2[..]).unwrap();
    let tail = run_stream(&mut third, &stream[c2..]);
    assert_eq!(
        sorted_keys(&tail),
        reference_tail(&stream, config, kind, c2)
    );
}

#[test]
fn pre_snapshot_output_matches_uninterrupted_prefix() {
    let stream = random_stream(44, 200, 10);
    let config = SssjConfig::new(0.6, 0.1);
    let mut recoverable = RecoverableJoin::new(config, IndexKind::L2);
    let mut plain = Streaming::new(config, IndexKind::L2);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for r in &stream {
        recoverable.process(r, &mut a);
        plain.process(r, &mut b);
    }
    assert_eq!(sorted_keys(&a), sorted_keys(&b));
    assert_eq!(recoverable.stats().pairs_output, plain.stats().pairs_output);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn roundtrip_equivalence_random_cut(
        seed in 0u64..500,
        cut_frac in 0.1f64..0.9,
        theta in 0.4f64..0.9,
        lambda in 0.02f64..0.5,
    ) {
        let stream = random_stream(seed, 120, 10);
        let cut = ((stream.len() as f64) * cut_frac) as usize;
        let config = SssjConfig::new(theta, lambda);
        let kind = IndexKind::L2;

        let mut join = RecoverableJoin::new(config, kind);
        let mut sink = Vec::new();
        for r in &stream[..cut] {
            join.process(r, &mut sink);
        }
        let mut bytes = Vec::new();
        join.write_snapshot(&mut bytes).unwrap();
        let mut restored = read_snapshot(&bytes[..]).unwrap();
        let tail = run_stream(&mut restored, &stream[cut..]);
        let want = reference_tail(&stream, config, kind, cut);
        prop_assert_eq!(sorted_keys(&tail), want.clone());

        // The compressed format restores to the same future output, and
        // is never larger than the raw one on these streams.
        let mut compressed = Vec::new();
        join.write_snapshot_compressed(&mut compressed).unwrap();
        prop_assert!(compressed.len() <= bytes.len());
        let mut restored_c = read_snapshot(&compressed[..]).unwrap();
        let tail_c = run_stream(&mut restored_c, &stream[cut..]);
        prop_assert_eq!(sorted_keys(&tail_c), want);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte corruption must yield a clean error or a valid
    /// join — never a panic, never a malformed structure.
    #[test]
    fn corrupted_snapshots_never_panic(
        seed in 0u64..100,
        flips in proptest::collection::vec((0usize..4096, 0u8..=255), 1..8),
        cut in proptest::option::of(0usize..4096),
        compressed in proptest::bool::ANY,
    ) {
        let stream = random_stream(seed, 40, 8);
        let mut join = RecoverableJoin::new(SssjConfig::new(0.6, 0.1), IndexKind::L2);
        let mut sink = Vec::new();
        for r in &stream {
            join.process(r, &mut sink);
        }
        let mut bytes = Vec::new();
        if compressed {
            join.write_snapshot_compressed(&mut bytes).unwrap();
        } else {
            join.write_snapshot(&mut bytes).unwrap();
        }
        for &(pos, val) in &flips {
            let len = bytes.len().max(1);
            if let Some(b) = bytes.get_mut(pos % len) {
                *b ^= val;
            }
        }
        if let Some(c) = cut {
            bytes.truncate(c % (bytes.len() + 1));
        }
        // Either outcome is fine; panicking or looping is not.
        if let Ok(mut restored) = read_snapshot(&bytes[..]) {
            // A structurally-valid mutation must still yield a join
            // that processes records without panicking.
            let mut out = Vec::new();
            let last_t = stream.last().map_or(0.0, |r| r.t.seconds());
            restored.process(
                &StreamRecord::new(
                    9999,
                    Timestamp::new(last_t + 1.0),
                    sssj_types::vector::unit_vector(&[(1, 1.0)]),
                ),
                &mut out,
            );
        }
    }
}

//! Property tests for the spec layer: `JoinSpec` → compact string →
//! `JoinSpec` and `JoinSpec` → JSON → `JoinSpec` are the identity, for
//! every engine and wrapper combination the grammar admits.

use proptest::prelude::*;
use sssj_core::{DecaySpec, EngineSpec, JoinSpec, LshSpec, ShardedInner, WrapperSpec};
use sssj_index::IndexKind;
use sssj_types::DecayModel;

fn index_kind() -> impl Strategy<Value = IndexKind> {
    prop_oneof![
        Just(IndexKind::L2),
        Just(IndexKind::L2ap),
        Just(IndexKind::Ap),
        Just(IndexKind::Inv),
    ]
}

fn decay_model() -> impl Strategy<Value = DecayModel> {
    prop_oneof![
        (1u32..100).prop_map(|l| DecayModel::exponential(l as f64 / 100.0)),
        (1u32..1000).prop_map(|w| DecayModel::sliding_window(w as f64)),
        (1u32..1000).prop_map(|w| DecayModel::linear(w as f64)),
        ((1u32..40), (1u32..100))
            .prop_map(|(a, s)| DecayModel::polynomial(a as f64 / 10.0, s as f64)),
    ]
}

fn decay_spec() -> impl Strategy<Value = DecaySpec> {
    (decay_model(), any::<bool>()).prop_map(|(model, window_max)| DecaySpec { model, window_max })
}

fn lsh_spec() -> impl Strategy<Value = LshSpec> {
    // (bits, bands) pairs restricted to valid shapes (bands divides
    // bits, rows ≤ 64).
    let lsh_shape = prop_oneof![
        Just((64u32, 8u32)),
        Just((128, 2)),
        Just((128, 16)),
        Just((256, 32)),
        Just((256, 4)),
        Just((512, 64)),
    ];
    (lsh_shape, any::<u64>(), any::<bool>()).prop_map(|((bits, bands), seed, estimate)| LshSpec {
        bits,
        bands,
        seed,
        estimate,
    })
}

fn sharded_inner() -> impl Strategy<Value = ShardedInner> {
    prop_oneof![
        Just(ShardedInner::Streaming),
        Just(ShardedInner::MiniBatch),
        decay_spec().prop_map(ShardedInner::GenericDecay),
        lsh_spec().prop_map(ShardedInner::Lsh),
    ]
}

fn engine() -> impl Strategy<Value = EngineSpec> {
    prop_oneof![
        Just(EngineSpec::Streaming),
        Just(EngineSpec::MiniBatch),
        decay_spec().prop_map(EngineSpec::GenericDecay),
        (1u32..50).prop_map(EngineSpec::TopK),
        lsh_spec().prop_map(EngineSpec::Lsh),
        ((1u32..=64), sharded_inner())
            .prop_map(|(shards, inner)| EngineSpec::Sharded { shards, inner }),
    ]
}

/// A full spec: engine plus parameters plus a wrapper stack that
/// respects the cross-parameter rules (`validate()` must accept it —
/// that is itself part of the property).
fn join_spec() -> impl Strategy<Value = JoinSpec> {
    (
        (
            engine(),
            index_kind(),
            1u32..=100,   // theta × 100
            1u32..10_000, // lambda × 10000
        ),
        (
            any::<bool>(),                      // snapshot
            any::<bool>(),                      // checked
            proptest::option::of(0u32..10_000), // reorder slack × 100
            any::<bool>(),                      // reorder before checked?
            proptest::option::of(prop_oneof![
                // durable directory (grammar-safe characters only)
                Just("/var/sssj"),
                Just("rel/store.d"),
                Just("/tmp/sssj-∂-unicode"),
            ]),
            any::<bool>(), // graph
        ),
    )
        .prop_map(
            |(
                (engine, index, theta, lambda),
                (snapshot, checked, reorder, reorder_first, durable, graph),
            )| {
                let mut spec = JoinSpec {
                    engine,
                    // decay is L2-only and lsh carries no index (directly
                    // or as a sharded inner); the canonical form omits the
                    // index for those.
                    index: if engine.uses_index() {
                        index
                    } else {
                        IndexKind::L2
                    },
                    theta: theta as f64 / 100.0,
                    lambda: match engine {
                        // decay engines pin λ = 0 (the model carries it);
                        // lsh needs λ > 0 for a finite horizon.
                        EngineSpec::GenericDecay(_)
                        | EngineSpec::Sharded {
                            inner: ShardedInner::GenericDecay(_),
                            ..
                        } => 0.0,
                        _ => lambda as f64 / 10_000.0,
                    },
                    wrappers: Vec::new(),
                };
                // Durable wraps the engine innermost, excludes snapshot
                // and checked, and only supports replayable engines.
                let durable_ok = matches!(
                    engine,
                    EngineSpec::Streaming | EngineSpec::MiniBatch | EngineSpec::GenericDecay(_)
                ) || matches!(
                    &engine,
                    EngineSpec::Sharded { inner, .. } if !matches!(inner, ShardedInner::Lsh(_))
                );
                let durable = durable.filter(|_| durable_ok);
                if let Some(dir) = &durable {
                    spec.wrappers.push(WrapperSpec::Durable(dir.to_string()));
                }
                let checked_ok = durable.is_none()
                    && matches!(
                        engine,
                        EngineSpec::Streaming
                            | EngineSpec::MiniBatch
                            | EngineSpec::Sharded {
                                inner: ShardedInner::Streaming | ShardedInner::MiniBatch,
                                ..
                            }
                    );
                if snapshot && durable.is_none() && engine == EngineSpec::Streaming {
                    spec.wrappers.push(WrapperSpec::Snapshot);
                }
                // Graph rides any engine; with durable it must sit
                // directly above (position 1), which pushing here —
                // right after the durable/snapshot base — satisfies.
                if graph {
                    spec.wrappers.push(WrapperSpec::Graph);
                }
                let reorder = reorder.map(|s| WrapperSpec::Reorder(s as f64 / 100.0));
                if reorder_first {
                    spec.wrappers.extend(reorder.clone());
                }
                if checked && checked_ok {
                    spec.wrappers.push(WrapperSpec::Checked);
                }
                if !reorder_first {
                    spec.wrappers.extend(reorder);
                }
                spec
            },
        )
}

proptest! {
    /// Every generated spec is valid, and Display → FromStr is the
    /// identity on it.
    #[test]
    fn compact_form_roundtrips(spec in join_spec()) {
        prop_assert!(spec.validate().is_ok(), "{spec:?}");
        let s = spec.to_string();
        let back: JoinSpec = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
        prop_assert_eq!(&back, &spec, "{}", s);
        // The canonical form is a fixed point of parse → display.
        prop_assert_eq!(back.to_string(), s);
    }

    /// to_json → from_json is the identity.
    #[test]
    fn json_form_roundtrips(spec in join_spec()) {
        let json = spec.to_json();
        let back = JoinSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        prop_assert_eq!(back, spec, "{}", json);
    }

    /// Core-buildable specs actually build, and the built join's name is
    /// stable across a spec round-trip.
    #[test]
    fn core_specs_build_identically_after_roundtrip(spec in join_spec()) {
        // LSH/sharded constructors and the durable store live in
        // downstream crates; building them here would need their
        // registration hooks (and, for durable, a filesystem directory).
        let buildable_here = !matches!(
            spec.engine,
            EngineSpec::Lsh(_) | EngineSpec::Sharded { .. }
        ) && !spec
            .wrappers
            .iter()
            .any(|w| matches!(w, WrapperSpec::Durable(_) | WrapperSpec::Graph));
        if buildable_here {
            let a = spec.build().unwrap_or_else(|e| panic!("{spec}: {e}"));
            let reparsed: JoinSpec = spec.to_string().parse().unwrap();
            let b = reparsed.build().unwrap();
            prop_assert_eq!(a.name(), b.name());
        }
    }
}

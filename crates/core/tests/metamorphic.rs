//! Metamorphic properties of the streaming join: transformations of the
//! input with a predictable effect on the output.

use proptest::prelude::*;
use sssj_core::{build_algorithm, run_stream, Framework, SssjConfig};
use sssj_index::IndexKind;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

fn stream(n: usize) -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0u32..16, 0.05f64..1.0), 1..5),
            0.0f64..3.0,
        ),
        1..=n,
    )
    .prop_map(|items| {
        let mut t = 0.0;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (entries, gap))| {
                t += gap;
                let mut b = SparseVectorBuilder::new();
                for (d, w) in entries {
                    b.push(d, w);
                }
                StreamRecord::new(
                    i as u64,
                    Timestamp::new(t),
                    b.build_normalized().expect("positive weights"),
                )
            })
            .collect()
    })
}

fn run(records: &[StreamRecord], theta: f64, lambda: f64) -> Vec<SimilarPair> {
    let mut join = build_algorithm(
        Framework::Streaming,
        IndexKind::L2,
        SssjConfig::new(theta, lambda),
    );
    let mut out = run_stream(join.as_mut(), records);
    out.sort_by_key(|p| p.key());
    out
}

fn shift_times(records: &[StreamRecord], dt: f64) -> Vec<StreamRecord> {
    records
        .iter()
        .map(|r| StreamRecord::new(r.id, r.t.plus(dt), r.vector.clone()))
        .collect()
}

fn scale_times(records: &[StreamRecord], c: f64) -> Vec<StreamRecord> {
    records
        .iter()
        .map(|r| StreamRecord::new(r.id, Timestamp::new(r.t.seconds() * c), r.vector.clone()))
        .collect()
}

/// Drops pairs whose similarity sits within float slack of θ — those can
/// legitimately flip under re-association of the decay arithmetic.
fn robust(pairs: Vec<SimilarPair>, theta: f64) -> Vec<(u64, u64)> {
    pairs
        .into_iter()
        .filter(|p| (p.similarity - theta).abs() > 1e-9)
        .map(|p| p.key())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Translating all timestamps leaves the join unchanged (only gaps
    /// matter).
    #[test]
    fn time_shift_invariance(
        records in stream(40),
        theta in 0.3f64..0.9,
        lambda in 0.001f64..0.3,
        dt in 0.0f64..1e4,
    ) {
        let base = run(&records, theta, lambda);
        let shifted = run(&shift_times(&records, dt), theta, lambda);
        prop_assert_eq!(base.len(), shifted.len());
        for (a, b) in base.iter().zip(&shifted) {
            prop_assert_eq!(a.key(), b.key());
            prop_assert!((a.similarity - b.similarity).abs() < 1e-9);
        }
    }

    /// Dilating time by c while dividing λ by c leaves the join
    /// unchanged: sim depends only on λ·Δt.
    #[test]
    fn time_scale_invariance(
        records in stream(40),
        theta in 0.3f64..0.9,
        lambda in 0.001f64..0.3,
        c in 0.1f64..10.0,
    ) {
        let base = robust(run(&records, theta, lambda), theta);
        let scaled = robust(run(&scale_times(&records, c), theta, lambda / c), theta);
        prop_assert_eq!(base, scaled);
    }

    /// Raising θ can only shrink the output, and the survivors keep
    /// their scores.
    #[test]
    fn theta_monotonicity(
        records in stream(40),
        theta in 0.3f64..0.7,
        bump in 0.01f64..0.25,
        lambda in 0.0f64..0.2,
    ) {
        let loose = run(&records, theta, lambda);
        let tight = run(&records, theta + bump, lambda);
        let loose_keys: std::collections::HashSet<_> =
            loose.iter().map(|p| p.key()).collect();
        for p in &tight {
            prop_assert!(
                loose_keys.contains(&p.key()),
                "pair {:?} appears only at the higher threshold", p.key()
            );
        }
        prop_assert!(tight.len() <= loose.len());
    }

    /// Raising λ can only shrink the output (decay is monotone), and
    /// shared pairs decay at least as much.
    #[test]
    fn lambda_monotonicity(
        records in stream(40),
        theta in 0.3f64..0.9,
        lambda in 0.001f64..0.1,
        factor in 1.0f64..5.0,
    ) {
        let slow = run(&records, theta, lambda);
        let fast = run(&records, theta, lambda * factor);
        let slow_map: std::collections::HashMap<_, f64> =
            slow.iter().map(|p| (p.key(), p.similarity)).collect();
        for p in &fast {
            match slow_map.get(&p.key()) {
                Some(&s) => prop_assert!(p.similarity <= s + 1e-9),
                None => prop_assert!(
                    false,
                    "pair {:?} appears only at the faster decay", p.key()
                ),
            }
        }
        prop_assert!(fast.len() <= slow.len());
    }

    /// Appending items to a stream never changes the pairs already
    /// reported among the original prefix (online property: the past is
    /// immutable).
    #[test]
    fn prefix_stability(
        records in stream(40),
        theta in 0.3f64..0.9,
        lambda in 0.001f64..0.2,
        cut in 1usize..39,
    ) {
        let cut = cut.min(records.len());
        let full = run(&records, theta, lambda);
        let prefix = run(&records[..cut], theta, lambda);
        let last_id = records[cut - 1].id;
        let full_within_prefix: Vec<_> = full
            .iter()
            .filter(|p| p.right <= last_id)
            .map(|p| p.key())
            .collect();
        let prefix_keys: Vec<_> = prefix.iter().map(|p| p.key()).collect();
        prop_assert_eq!(full_within_prefix, prefix_keys);
    }
}

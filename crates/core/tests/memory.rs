//! Sanity properties of the `memory_bytes` estimates: they must move in
//! the direction real memory moves, or the `harness memory` experiment
//! (Table 2's failure modes, quantified) would be meaningless.

use sssj_core::{MiniBatch, SssjConfig, StreamJoin, Streaming};
use sssj_index::IndexKind;
use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};

fn uniform_stream(n: u64, gap: f64, dims: u32) -> Vec<StreamRecord> {
    (0..n)
        .map(|i| {
            let d1 = (i as u32 * 7) % dims;
            let d2 = (i as u32 * 13 + 1) % dims;
            let entries = if d1 == d2 {
                vec![(d1, 1.0)]
            } else {
                vec![(d1.min(d2), 0.8), (d1.max(d2), 0.6)]
            };
            StreamRecord::new(i, Timestamp::new(i as f64 * gap), unit_vector(&entries))
        })
        .collect()
}

fn peak_streaming(records: &[StreamRecord], theta: f64, lambda: f64, kind: IndexKind) -> u64 {
    let mut join = Streaming::new(SssjConfig::new(theta, lambda), kind);
    let mut out = Vec::new();
    let mut peak = 0;
    for r in records {
        join.process(r, &mut out);
        out.clear();
        peak = peak.max(join.memory_bytes());
    }
    peak
}

#[test]
fn empty_join_is_small_and_nonzero_after_first_record() {
    let mut join = Streaming::new(SssjConfig::new(0.7, 0.1), IndexKind::L2);
    let empty = join.memory_bytes();
    let mut out = Vec::new();
    join.process(
        &StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(5, 1.0)])),
        &mut out,
    );
    assert!(join.memory_bytes() > empty, "indexing must cost something");
}

#[test]
fn streaming_state_is_bounded_by_the_horizon() {
    // On a uniform stream, state must plateau: bytes after 2n records are
    // not materially larger than after n (everything older is pruned).
    let records = uniform_stream(2_000, 1.0, 50);
    let mut join = Streaming::new(SssjConfig::new(0.5, 0.1), IndexKind::L2); // τ≈6.9
    let mut out = Vec::new();
    let mut at_half = 0;
    for (i, r) in records.iter().enumerate() {
        join.process(r, &mut out);
        out.clear();
        if i == records.len() / 2 {
            at_half = join.memory_bytes();
        }
    }
    let at_end = join.memory_bytes();
    assert!(
        at_end <= at_half * 2,
        "state must not keep growing: {at_half} → {at_end}"
    );
}

#[test]
fn shorter_horizon_uses_less_memory() {
    let records = uniform_stream(1_500, 1.0, 50);
    let small = peak_streaming(&records, 0.5, 0.5, IndexKind::L2);
    let large = peak_streaming(&records, 0.5, 0.005, IndexKind::L2);
    assert!(
        small < large,
        "λ=0.5 ({small} B) must be leaner than λ=0.005 ({large} B)"
    );
}

#[test]
fn l2ap_carries_auxiliary_state_l2_avoids() {
    // The paper's L2 design argument: the AP-family bounds drag streaming
    // liabilities along — the whole-stream max vector m, the decayed max
    // m̂λ, and re-indexing churn when m grows — none of which L2 needs.
    // (A raw byte comparison is not meaningful here: L2AP's b1 bound also
    // *defers* indexing, so its posting lists can be smaller than L2's;
    // what the paper charges L2AP for is the auxiliary machinery.)
    let records = uniform_stream(1_000, 1.0, 50);
    let run = |kind| {
        let mut join = Streaming::new(SssjConfig::new(0.5, 0.01), kind);
        let mut out = Vec::new();
        for r in &records {
            join.process(r, &mut out);
            out.clear();
        }
        join
    };
    let l2 = run(IndexKind::L2);
    let l2ap = run(IndexKind::L2ap);
    assert!(
        l2.max_entries().is_empty(),
        "L2 must not maintain the AP max vector"
    );
    assert!(
        !l2ap.max_entries().is_empty(),
        "L2AP must maintain the AP max vector"
    );
    assert_eq!(l2.stats().reindexed_postings, 0);
    // Re-indexing churn needs m to grow past an indexed residual; a short
    // crafted stream shows L2AP pays it while L2 never does.
    // Vector 0 keeps (1, 0.6) in its residual (b1 = 0.36 < θ at insert);
    // vector 1 raises m[1] to 1.0, making the residual's replayed b1 =
    // 0.6 ≥ θ — the prefix-filter invariant breaks and 0 is re-indexed.
    let churn = vec![
        StreamRecord::new(0, Timestamp::new(0.0), unit_vector(&[(1, 3.0), (2, 4.0)])),
        StreamRecord::new(1, Timestamp::new(1.0), unit_vector(&[(1, 1.0)])),
    ];
    let mut join = Streaming::new(SssjConfig::new(0.5, 0.001), IndexKind::L2ap);
    let mut out = Vec::new();
    for r in &churn {
        join.process(r, &mut out);
    }
    assert!(
        join.stats().reindexed_vectors > 0,
        "L2AP must re-index when m grows"
    );
    // And the memory estimate must at least see L2AP's extra structures:
    // equal-posting-load state, m, m̂λ and the inverted index included.
    assert!(l2ap.memory_bytes() > 0 && l2.memory_bytes() > 0);
}

#[test]
fn minibatch_state_is_bounded_too() {
    let records = uniform_stream(2_000, 1.0, 50);
    let mut join = MiniBatch::new(SssjConfig::new(0.5, 0.1), IndexKind::L2);
    let mut out = Vec::new();
    let mut peak_early = 0u64;
    for (i, r) in records.iter().enumerate() {
        join.process(r, &mut out);
        out.clear();
        if i < records.len() / 2 {
            peak_early = peak_early.max(join.memory_bytes());
        } else {
            assert!(
                join.memory_bytes() <= peak_early * 2,
                "MB state exceeded twice its first-half peak at record {i}"
            );
        }
    }
}

//! Steady-state allocation audit: after warm-up, the STR-L2 loop must
//! process records with **zero** heap allocations — the pooled residuals,
//! epoch accumulator, flat packed posting blocks and owned scratch
//! buffers together leave nothing to allocate per record.
//!
//! The binary installs a counting wrapper around the system allocator;
//! this file intentionally contains a single `#[test]` so no concurrent
//! test pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sssj_core::{SssjConfig, StreamJoin, Streaming};
use sssj_index::IndexKind;
use sssj_types::{vector::unit_vector, StreamRecord, Timestamp};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A steady-rate stream with fixed-shape vectors over a small vocabulary:
/// occupancy of every structure plateaus, which is exactly the regime the
/// zero-allocation claim covers.
fn steady_stream(n: u64) -> Vec<StreamRecord> {
    (0..n)
        .map(|i| {
            let base = (i * 7) % 29;
            let entries = [
                (base as u32, 0.7),
                ((base as u32 + 3) % 29, 0.5),
                ((base as u32 + 11) % 29, 0.4),
                ((base as u32 + 17) % 29, 0.3),
            ];
            StreamRecord::new(i, Timestamp::new(i as f64 * 0.25), unit_vector(&entries))
        })
        .collect()
}

#[test]
fn str_l2_steady_state_allocates_nothing() {
    // τ = ln(1/0.6)/0.05 ≈ 10.2 → ~41 live vectors at 4 records/unit.
    let config = SssjConfig::new(0.6, 0.05);
    let records = steady_stream(6_000);
    let mut join = Streaming::new(config, IndexKind::L2);
    let mut out = Vec::with_capacity(1 << 16);

    // Warm-up: fill pools, grow posting blocks and hash maps to their
    // plateau, slide past several horizons.
    let (warmup, measured) = records.split_at(5_000);
    for r in warmup {
        join.process(r, &mut out);
        out.clear();
    }

    let before = allocations();
    let mut pairs = 0u64;
    for r in measured {
        join.process(r, &mut out);
        pairs += out.len() as u64;
        out.clear();
    }
    let after = allocations();

    // The loop must have exercised the full path: candidates generated,
    // pairs emitted, postings pruned.
    assert!(pairs > 0, "measurement window must produce pairs");
    assert!(join.stats().entries_pruned > 0, "time filtering must run");
    assert_eq!(
        after - before,
        0,
        "steady-state STR-L2 must not allocate: {} allocations over {} records",
        after - before,
        measured.len()
    );
}

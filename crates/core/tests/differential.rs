//! Differential property tests: the optimized STR hot path (dense epoch
//! accumulator, flat packed posting blocks, memoized decay bounds,
//! pooled residuals) must emit exactly the same pair set as the naive
//! O(n²) sliding-window baseline on random decayed streams.

use proptest::prelude::*;
use sssj_baseline::brute_force_stream;
use sssj_core::{SssjConfig, StreamJoin, Streaming};
use sssj_index::IndexKind;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

/// A random decayed stream: ids strictly increasing, timestamps
/// non-decreasing with random gaps, vectors with up to 5 random positive
/// coordinates over a small vocabulary (small → dense collisions → many
/// near-threshold pairs).
fn stream_strategy() -> impl Strategy<Value = Vec<StreamRecord>> {
    proptest::collection::vec(
        (
            0.0f64..0.8,                                               // arrival gap
            proptest::collection::vec((0u32..18, 0.05f64..1.0), 1..6), // coords
        ),
        1..120,
    )
    .prop_map(|raw| {
        let mut t = 0.0;
        raw.into_iter()
            .enumerate()
            .filter_map(|(i, (gap, coords))| {
                t += gap;
                let mut b = SparseVectorBuilder::with_capacity(coords.len());
                for (d, w) in coords {
                    b.push(d, w);
                }
                let v = b.build_normalized().ok()?;
                Some(StreamRecord::new(i as u64, Timestamp::new(t), v))
            })
            .collect()
    })
}

fn sorted_keys(pairs: &[SimilarPair]) -> Vec<(u64, u64)> {
    let mut keys: Vec<_> = pairs.iter().map(|p| p.key()).collect();
    keys.sort_unstable();
    keys
}

fn run_streaming(
    kind: IndexKind,
    records: &[StreamRecord],
    theta: f64,
    lambda: f64,
) -> Vec<SimilarPair> {
    let mut join = Streaming::new(SssjConfig::new(theta, lambda), kind);
    let mut out = Vec::new();
    for r in records {
        join.process(r, &mut out);
    }
    join.finish(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// STR-L2 and STR-L2AP equal the brute-force oracle: identical pair
    /// sets, and per-pair similarities equal to 1e-9.
    #[test]
    fn optimized_str_paths_match_naive_baseline(
        records in stream_strategy(),
        theta in 0.3f64..0.95,
        lambda in 0.01f64..1.0,
    ) {
        let expected = brute_force_stream(&records, theta, lambda);
        let expected_keys = sorted_keys(&expected);
        for kind in [IndexKind::L2, IndexKind::L2ap, IndexKind::Inv, IndexKind::Ap] {
            let got = run_streaming(kind, &records, theta, lambda);
            prop_assert_eq!(
                sorted_keys(&got),
                expected_keys.clone(),
                "pair set mismatch for {} θ={} λ={}",
                kind,
                theta,
                lambda
            );
            // Similarities must match the oracle, not just the keys: the
            // decay table may only influence *pruning*, never values.
            let mut got_sims: Vec<(u64, u64, f64)> =
                got.iter().map(|p| (p.key().0, p.key().1, p.similarity)).collect();
            got_sims.sort_by_key(|s| (s.0, s.1));
            let mut want_sims: Vec<(u64, u64, f64)> = expected
                .iter()
                .map(|p| (p.key().0, p.key().1, p.similarity))
                .collect();
            want_sims.sort_by_key(|s| (s.0, s.1));
            for (g, w) in got_sims.iter().zip(&want_sims) {
                prop_assert!(
                    (g.2 - w.2).abs() < 1e-9,
                    "similarity drift on pair ({}, {}): {} vs {}",
                    g.0, g.1, g.2, w.2
                );
            }
        }
    }

    /// The decomposed query/insert halves (the sharded-execution API)
    /// agree with the fused process path.
    #[test]
    fn query_insert_decomposition_matches_process(
        records in stream_strategy(),
        theta in 0.3f64..0.9,
        lambda in 0.05f64..1.0,
    ) {
        let config = SssjConfig::new(theta, lambda);
        let fused = run_streaming(IndexKind::L2, &records, theta, lambda);
        let mut join = Streaming::new(config, IndexKind::L2);
        let mut split = Vec::new();
        for r in &records {
            join.query(r, &mut split);
            join.insert_record(r);
        }
        prop_assert_eq!(sorted_keys(&split), sorted_keys(&fused));
    }

    /// End-to-end lane differential: every engine emits the same pair set
    /// with the SIMD kernels forced to their scalar references as with
    /// runtime dispatch. This is the whole-join counterpart of the
    /// per-kernel tests in `sssj-kernels` — it catches dispatch-boundary
    /// mistakes (wrong slack rearrangement, order-dependent accumulation)
    /// no micro test can see.
    #[test]
    fn forced_scalar_lane_matches_auto_dispatch(
        records in stream_strategy(),
        theta in 0.3f64..0.9,
        lambda in 0.05f64..1.0,
    ) {
        // The lane override is process-global; serialize with any other
        // test that touches it and always restore.
        static LANE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LANE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        struct Restore;
        impl Drop for Restore {
            fn drop(&mut self) {
                sssj_kernels::force_lane(None);
            }
        }
        let _restore = Restore;

        for kind in [IndexKind::L2, IndexKind::Inv] {
            sssj_kernels::force_lane(None);
            let auto = run_streaming(kind, &records, theta, lambda);
            sssj_kernels::force_lane(Some(sssj_kernels::Lane::Scalar));
            let scalar = run_streaming(kind, &records, theta, lambda);
            sssj_kernels::force_lane(None);
            prop_assert_eq!(
                sorted_keys(&scalar),
                sorted_keys(&auto),
                "lane-dependent pair set for {} θ={} λ={}",
                kind,
                theta,
                lambda
            );
        }
    }
}

//! Property tests for [`sssj_core::ReorderBuffer`]: a slack-bounded
//! shuffle of a stream, fed through the buffer, must produce exactly the
//! output of the same join over the stably time-sorted stream.

use proptest::prelude::*;
use sssj_core::{
    build_algorithm, run_stream, Framework, ReorderBuffer, SssjConfig, StreamJoin, Streaming,
};
use sssj_index::IndexKind;
use sssj_types::{SimilarPair, SparseVectorBuilder, StreamRecord, Timestamp};

/// A sorted random stream plus per-record backward jitters bounded by
/// `slack`: record i is presented at *position* order of `t_i − jitter_i`
/// while keeping its true timestamp, which models network-delayed
/// delivery. The result is a stream whose disorder is within `slack`.
fn jittered_stream(
    n: usize,
    dims: u32,
    slack: f64,
) -> impl Strategy<Value = (Vec<StreamRecord>, Vec<StreamRecord>)> {
    proptest::collection::vec(
        (
            proptest::collection::vec((0..dims, 0.05f64..1.0), 1..=4),
            0.0f64..3.0,  // inter-arrival gap
            0.0f64..=1.0, // jitter fraction of slack
        ),
        2..=n,
    )
    .prop_map(move |items| {
        let mut t = 0.0;
        let mut sorted = Vec::with_capacity(items.len());
        let mut delivery: Vec<(f64, usize)> = Vec::with_capacity(items.len());
        for (i, (entries, gap, jitter)) in items.into_iter().enumerate() {
            t += gap;
            let mut b = SparseVectorBuilder::new();
            for (d, w) in entries {
                b.push(d, w);
            }
            let r = StreamRecord::new(
                i as u64,
                Timestamp::new(t),
                b.build_normalized().expect("positive weights"),
            );
            sorted.push(r);
            // Deliver at time t − jitter·slack (never before t=0); ties
            // broken by original index so delivery order is deterministic.
            delivery.push(((t - jitter * slack).max(0.0), i));
        }
        delivery.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let shuffled: Vec<StreamRecord> = delivery
            .into_iter()
            .map(|(_, i)| sorted[i].clone())
            .collect();
        (sorted, shuffled)
    })
}

fn keys(pairs: &[SimilarPair], theta: f64) -> Vec<(u64, u64)> {
    let mut k: Vec<(u64, u64)> = pairs
        .iter()
        .filter(|p| (p.similarity - theta).abs() > 1e-9)
        .map(|p| p.key())
        .collect();
    k.sort_unstable();
    k.dedup();
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Reordered delivery within slack == sorted-stream output, for every
    /// framework × index combination.
    #[test]
    fn slack_bounded_disorder_is_transparent(
        (sorted, shuffled) in jittered_stream(40, 12, 6.0),
        theta in 0.3f64..0.9,
        lambda in 0.01f64..0.4,
    ) {
        let config = SssjConfig::new(theta, lambda);
        for framework in Framework::ALL {
            for kind in IndexKind::ALL {
                let mut reference = build_algorithm(framework, kind, config);
                let want = keys(&run_stream(reference.as_mut(), &sorted), theta);

                let inner = build_algorithm(framework, kind, config);
                let mut buffered = ReorderBuffer::new(inner, 6.0);
                let mut got = Vec::new();
                for r in &shuffled {
                    buffered
                        .push(r, &mut got)
                        .expect("jitter is within slack; nothing may be late");
                }
                let _ = buffered.into_inner(&mut got);
                prop_assert_eq!(
                    keys(&got, theta), want,
                    "{}-{} disagrees under reordering", framework, kind
                );
            }
        }
    }

    /// With arbitrary (unbounded) shuffling and the permissive drop
    /// policy, the output is still a sound subset: every reported pair is
    /// genuinely θ-similar under the decayed measure.
    #[test]
    fn dropped_late_records_never_create_false_positives(
        (sorted, _) in jittered_stream(30, 10, 0.0),
        theta in 0.3f64..0.9,
        lambda in 0.01f64..0.4,
        seed in 0u64..1000,
    ) {
        // Deterministic Fisher–Yates from the seed: full shuffle, far
        // beyond any slack.
        let mut shuffled = sorted.clone();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }

        let config = SssjConfig::new(theta, lambda);
        let inner = Streaming::new(config, IndexKind::L2);
        let mut buffered = ReorderBuffer::new(inner, 1.0);
        let mut got = Vec::new();
        for r in &shuffled {
            buffered.process(r, &mut got); // late ones dropped, counted
        }
        buffered.finish(&mut got);

        let by_id: std::collections::HashMap<u64, &StreamRecord> =
            sorted.iter().map(|r| (r.id, r)).collect();
        for p in &got {
            let (x, y) = (by_id[&p.left], by_id[&p.right]);
            let sim = x.vector.dot(&y.vector) * (-lambda * x.t.delta(y.t)).exp();
            prop_assert!(
                sim >= theta - 1e-9,
                "pair ({}, {}) reported at sim {} < θ={}", p.left, p.right, sim, theta
            );
        }
    }
}
